"""The sharded cluster: N Precursor replica groups behind one shard map.

Each shard is a :class:`~repro.replica.ReplicaGroup`: a primary
:class:`~repro.core.server.PrecursorServer` plus ``replicas`` backups,
every member a full machine with its own RDMA fabric, NIC and enclave --
the scale-out unit the paper's client-centric design makes cheap, since
the server does almost no per-request work.  One shared
:class:`~repro.obs.ObsContext` collects every member's metrics under a
``shard`` label.

Ownership is decided by a :class:`~repro.shard.ring.HashRing` wrapped in
a versioned :class:`ShardMap`.  Membership changes (``add_shard`` /
``remove_shard``) run the live migration engine and then install the new
map under a bumped epoch; routers holding the old epoch notice on their
next operation and re-route (see ``docs/SHARDING.md`` for the protocol).

Primary failure (:meth:`ShardedCluster.crash_shard`) is handled by
**promotion**, not by ring surgery: the group elects its most-caught-up
backup, the cluster installs the *same* ring under a bumped epoch (the
failover fence), and routers re-attest against the new primary on their
next operation.  Only a group with no live backup falls back to the
PR-3 route-around path (:meth:`handle_shard_failure`), where the dead
shard's keys are unavailable until :meth:`restore_shard`.  There is no
checkpoint taken at crash time -- durability across a crash is exactly
what the group's acknowledged-write contract (sync / semi-sync / async)
bought, nothing more; :class:`~repro.core.persistence.CheckpointManager`
remains available for *explicit operator snapshots* only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.testbed import TestbedSpec, sharded_testbed
from repro.core.persistence import CheckpointManager
from repro.core.server import PrecursorServer, ServerConfig
from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs import ObsContext
from repro.rdma.fabric import Fabric
from repro.replica import FailoverReport, ReplicaGroup
from repro.shard.migrate import MigrationEngine, MigrationReport
from repro.shard.ring import DEFAULT_VNODES, HashRing

__all__ = ["ShardMap", "ShardedCluster"]


@dataclass(frozen=True)
class ShardMap:
    """A versioned routing table: who owns which slice of the key space.

    Routers cache a snapshot and compare epochs against the cluster's
    authoritative map; a mismatch means a membership change happened and
    the cached routing may be stale.
    """

    epoch: int
    ring: HashRing

    def owner(self, key: bytes) -> str:
        """Shard owning ``key`` under this map."""
        return self.ring.route(key)


class ShardedCluster:
    """N Precursor shards plus the authoritative shard map.

    Parameters
    ----------
    shards:
        Initial shard count (names default to ``shard-0..N-1``).
    config:
        Per-shard :class:`~repro.core.server.ServerConfig`; every shard
        gets the same configuration (one binary, one measurement).
    vnodes / seed:
        Ring geometry; deterministic placement under ``seed``.
    obs:
        Shared observability context; defaults to a fresh one.
    """

    def __init__(
        self,
        shards: int = 2,
        config: ServerConfig = None,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        obs: ObsContext = None,
        shard_names: Optional[List[str]] = None,
        replicas: int = 0,
        ack_mode: str = "sync",
        async_flush_every: int = 4,
    ):
        if shard_names is not None:
            names = list(shard_names)
            if len(names) != len(set(names)):
                raise ConfigurationError(f"duplicate shard names: {names}")
        else:
            if shards < 1:
                raise ConfigurationError(
                    f"need at least one shard, got {shards}"
                )
            names = [f"shard-{i}" for i in range(shards)]
        if replicas < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {replicas}")
        self.config = config if config is not None else ServerConfig()
        self.obs = obs if obs is not None else ObsContext.create()
        self.replicas = replicas
        self.ack_mode = ack_mode
        self.async_flush_every = async_flush_every
        self.testbed: TestbedSpec = sharded_testbed(len(names), replicas)
        self._servers: Dict[str, PrecursorServer] = {}
        self._groups: Dict[str, ReplicaGroup] = {}
        self._next_index = 0  # server spawn ordinal (migration-IV space)
        self._name_seq = 0  # default shard-name ordinal
        for name in names:
            self._spawn_group(name)
        self.shard_map = ShardMap(epoch=1, ring=HashRing(names, vnodes, seed))
        # Epoch 1 goes through the event ring like every later install,
        # so an offline reconstruction of a flight dump sees the full
        # topology history from the founding membership onward.
        self.obs.record_event(
            "epoch_install", epoch=1, shards=list(self.shard_map.ring.shards)
        )
        self._engine = MigrationEngine(self)
        #: Sealed persistence for *explicit operator snapshots*, shared
        #: cluster-wide: every shard runs the same measurement, so one
        #: manager (one sealing key + counter guard) serves them all.
        #: Crash durability is the replica groups' job, not this one's.
        self.checkpoints = CheckpointManager()
        self._obs_epoch = self.obs.registry.gauge(
            "shard_map_epoch", "current shard-map epoch"
        )
        self._obs_epoch.set(self.shard_map.epoch)

    def _spawn_server(self, name: str) -> PrecursorServer:
        server = PrecursorServer(
            fabric=Fabric(),
            config=self.config,
            obs=self.obs,
            shard_name=name,
            shard_index=self._next_index,
        )
        self._next_index += 1
        # Start now (idempotent): a member must be polling before the
        # migration engine or replication log imports entries into it, or
        # the first client connection would re-issue ``init_hashtable``
        # and wipe them.
        server.start()
        return server

    def _spawn_group(self, name: str) -> ReplicaGroup:
        primary = self._spawn_server(name)
        backups = [
            self._spawn_server(f"{name}/b{i}") for i in range(self.replicas)
        ]
        group = ReplicaGroup(
            name,
            primary,
            backups,
            ack_mode=self.ack_mode,
            obs=self.obs,
            async_flush_every=self.async_flush_every,
        )
        self._servers[name] = primary
        self._groups[name] = group
        self._name_seq += 1
        return group

    # -- introspection -----------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        """Current member shard names (ring order)."""
        return self.shard_map.ring.shards

    @property
    def epoch(self) -> int:
        """Current shard-map epoch."""
        return self.shard_map.epoch

    def server(self, name: str) -> PrecursorServer:
        """The server currently *primary* for shard ``name``."""
        server = self._servers.get(name)
        if server is None:
            raise ConfigurationError(f"unknown shard {name!r}")
        return server

    def group(self, name: str) -> ReplicaGroup:
        """The replica group behind shard ``name``."""
        group = self._groups.get(name)
        if group is None:
            raise ConfigurationError(f"unknown shard {name!r}")
        return group

    @property
    def promotions(self) -> int:
        """Backup promotions performed across every group."""
        return sum(g.promotions for g in self._groups.values())

    @property
    def lost_records(self) -> int:
        """Acked log records lost at promotions (async tails), all groups."""
        return sum(g.lost_records for g in self._groups.values())

    def owner(self, key: bytes) -> str:
        """Authoritative owner of ``key``."""
        return self.shard_map.owner(key)

    def server_for(self, key: bytes) -> PrecursorServer:
        """Authoritative owning server of ``key``."""
        return self.server(self.owner(key))

    def key_counts(self) -> Dict[str, int]:
        """Stored keys per shard (live shards only)."""
        return {
            name: self._servers[name].key_count for name in self.shards
        }

    def total_keys(self) -> int:
        """Keys stored across all live shards."""
        return sum(self.key_counts().values())

    def trusted_bytes(self) -> Dict[str, int]:
        """Per-shard enclave working set (the Table-1 census, per shard)."""
        return {
            name: self._servers[name].trusted_working_set_bytes()
            for name in self.shards
        }

    def process_pending(self) -> int:
        """Pump every live shard's polling loop once (explicit-pump mode)."""
        return sum(
            self._servers[name].process_pending()
            for name in self.shards
            if not self._servers[name].crashed
        )

    # -- membership changes ------------------------------------------------

    def _install_map(self, ring: HashRing, epoch: int) -> None:
        # Called by the migration engine once every key is in place.
        self.shard_map = ShardMap(epoch=epoch, ring=ring)
        self._obs_epoch.set(epoch)
        self.obs.record_event(
            "epoch_install", epoch=epoch, shards=list(ring.shards)
        )

    def add_shard(self, name: str = None) -> MigrationReport:
        """Join a new shard: spawn its group, rebalance, bump the epoch.

        Consistent hashing moves ~``1/(n+1)`` of the keys, all of them
        *onto* the joiner (and, via the joiner's replication hook, onto
        its backups).
        """
        if name is None:
            name = f"shard-{self._name_seq}"
        if name in self._servers:
            raise ConfigurationError(f"shard {name!r} already exists")
        self._spawn_group(name)
        self.obs.record_event("shard_join", shard=name)
        report = self._engine.rebalance(self.shard_map.ring.with_shard(name))
        # Only a *successful* join changes the testbed shape; a rebalance
        # aborted by a shard failure leaves the old spec authoritative.
        self.testbed = sharded_testbed(len(self.shards), self.replicas)
        return report

    def remove_shard(self, name: str) -> MigrationReport:
        """Drain and retire shard ``name`` (its keys spread over the rest)."""
        if name not in self.shard_map.ring:
            raise ConfigurationError(f"shard {name!r} not in the ring")
        self.obs.record_event("shard_leave", shard=name)
        report = self._engine.rebalance(self.shard_map.ring.without_shard(name))
        retired = self._groups.pop(name)
        self._servers.pop(name)
        # The drain's evictions replicate through the primary's hook;
        # flush so an async group's backups drop their tail too, then
        # verify no member of the retiring group still holds a key.
        retired.flush()
        retired.primary.replication_hook = None
        for member in retired.members():
            if not member.crashed and member.key_count:
                raise ConfigurationError(
                    f"shard {name!r} retired with {member.key_count} keys "
                    f"left on {member.shard_name!r}"
                )
        self.testbed = sharded_testbed(len(self.shards), self.replicas)
        return report

    def add_replica(self, name: str) -> PrecursorServer:
        """Grow shard ``name``'s replica group by one fresh backup.

        The backup is a full machine (own fabric, NIC, enclave) spawned
        under the next migration-IV ordinal, folded in via the group's
        full state transfer -- it participates in the ack contract from
        the moment this returns.  No ring or epoch change: replica
        membership is invisible to routing.
        """
        group = self.group(name)
        backup = self._spawn_server(f"{name}/b{self._next_index}")
        group.add_backup(backup)
        self.obs.record_event(
            "replica_join", shard=name, backup=backup.shard_name
        )
        return backup

    def remove_replica(self, name: str) -> PrecursorServer:
        """Shrink shard ``name``'s replica group by one backup.

        The group picks the cheapest victim (crashed first, then
        least-applied); see :meth:`ReplicaGroup.remove_backup`.  The
        caller is responsible for not shrinking below the ack
        contract's floor -- the autoscaler's stability guard enforces
        ``min_replicas`` for exactly this reason.
        """
        group = self.group(name)
        victim = group.remove_backup()
        self.obs.record_event(
            "replica_leave", shard=name, backup=victim.shard_name
        )
        return victim

    # -- failures and recovery ----------------------------------------------

    def crash_shard(self, name: str) -> PrecursorServer:
        """Fail shard ``name``'s primary, promoting a backup if one lives.

        The primary's enclave dies with everything it had not shipped:
        there is **no checkpoint at the crash instant** -- what survives
        is exactly what the group's acknowledged-write contract shipped
        to backups.  With a live backup, the group promotes its most
        caught-up member and the cluster installs the *same* ring under a
        bumped epoch (the failover fence routers re-attest through).
        Without one, the shard simply stays dark -- clients see errored
        QPs and :class:`ShardUnavailableError` until either a router
        triggers :meth:`handle_shard_failure` or an operator runs
        :meth:`restore_shard`.  Returns the crashed server; the group's
        ``last_failover`` report carries the promotion details.
        """
        server = self.server(name)
        if server.crashed:
            raise ConfigurationError(f"shard {name!r} is already down")
        self.obs.record_event("shard_crash", shard=name)
        server.crash()
        self._promote_if_possible(name)
        if self.obs.flight is not None:
            self.obs.flight.trigger("shard_crash", shard=name)
        return server

    def _promote_if_possible(self, name: str) -> Optional[FailoverReport]:
        group = self._groups[name]
        if not group.live_backups():
            return None
        report = group.promote()
        self._servers[name] = group.primary
        # Same ring, new epoch: the fence that tells every router "the
        # member behind this shard name changed, re-route and re-attest".
        self._install_map(self.shard_map.ring, self.shard_map.epoch + 1)
        self.obs.registry.counter(
            "recoveries_total",
            "recovery actions taken",
            {"kind": "promotion"},
        ).inc()
        return report

    def handle_shard_failure(self, name: str) -> bool:
        """Route around a dead shard: drop it from the ring, bump the epoch.

        No migration runs -- the dead shard cannot export.  Its keys stay
        unavailable (routed requests answer NOT_FOUND on the new owners)
        until :meth:`restore_shard` brings them back.  Returns False when
        the shard already left the ring (idempotent under races between
        routers).  Raises :class:`ShardUnavailableError` when the failed
        shard was the last member: there is nowhere left to route.
        """
        if name not in self.shard_map.ring:
            return False
        if len(self.shards) == 1:
            raise ShardUnavailableError(
                f"shard {name!r} was the cluster's last member"
            )
        self.obs.record_event("route_around", shard=name)
        self._install_map(
            self.shard_map.ring.without_shard(name), self.shard_map.epoch + 1
        )
        return True

    def restore_shard(self, name: str) -> int:
        """Bring shard ``name`` back to full strength after a crash.

        The healing path depends on what the crash left behind:

        - the usual case -- a backup was already promoted -- restarts the
          dead ex-primary (fresh enclave, same measurement, *empty*
          state) and folds it back in as a backup via a full resync from
          the current primary;
        - a primary still dark but with live backups (no router touched
          the shard since the crash) is promoted first, then healed the
          same way;
        - a group with nothing live (``replicas=0``, or everyone dead)
          restarts the primary empty: unreplicated data is **gone**, and
          clients that hold freshness claims for it will detect the loss
          (:class:`~repro.errors.StaleReadError`) -- exactly what the
          paper's trust model promises, no more.

        If a route-around removed the shard from the ring meanwhile, it
        is rebalanced back in (keys written to survivors during the
        outage migrate over).  Returns the number of entries resynced
        into rejoining members.
        """
        group = self.group(name)
        if group.primary.crashed:
            if group.live_backups():
                self._promote_if_possible(name)
            else:
                group.primary.restart()
                group.primary.start()
        restored = group.rejoin()
        if name not in self.shard_map.ring:
            self._engine.rebalance(self.shard_map.ring.with_shard(name))
        self.obs.record_event("shard_restore", shard=name, resynced=restored)
        self.obs.registry.counter(
            "recoveries_total",
            "recovery actions taken",
            {"kind": "crash_restart"},
        ).inc()
        return restored
