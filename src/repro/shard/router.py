"""The shard-aware client router.

A :class:`ShardedClient` wraps one attested
:class:`~repro.core.client.PrecursorClient` session (QP pair, reply
ring, replay counter) *per shard*, all under a single client identity,
and routes every operation by key hash through a cached snapshot of the
cluster's shard map.  Multi-key batches are fanned out per shard and the
replies merged back into request order.

Epoch protocol (see ``docs/SHARDING.md``):

- **writes** are epoch-fenced: before a ``put`` the router validates its
  cached epoch against the authoritative map and refreshes when stale,
  so a write can never land on a shard that no longer owns the key;
- **reads/deletes** route optimistically on the cached map.  When a
  migration raced the operation, the old owner answers ``NOT_FOUND``;
  the router then notices the epoch bump, refreshes its snapshot and
  retries the operation against the new owner -- the "in-flight clients
  retry stale-routed ops" half of the protocol.  A genuine miss under a
  current epoch propagates unchanged.

All of Precursor's client-side guarantees are per-underlying-session and
survive routing: payload MACs are verified by the same code path, replay
counters stay per (client, shard) session, and a one-shard router is
protocol-equivalent to a direct client.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache import NearCache
from repro.core.client import PrecursorClient, allocate_client_id
from repro.crypto.keys import KeyGenerator
from repro.errors import (
    AccessError,
    IntegrityError,
    KeyNotFoundError,
    OperationTimeoutError,
    PrecursorError,
    ShardUnavailableError,
)
from repro.obs import Trace
from repro.replica import FreshnessTracker

__all__ = ["ShardedClient"]


class ShardedClient:
    """A client that speaks to a whole :class:`ShardedCluster`.

    Parameters mirror :class:`~repro.core.client.PrecursorClient` where
    they apply; ``client_id`` defaults to a fresh process-wide id used on
    *every* shard, so ownership metadata stays valid when entries migrate
    between shards.

    With ``track_freshness`` enabled the router keeps a client-side
    :class:`~repro.replica.FreshnessTracker`: the payload MAC of every
    acknowledged single-key write is remembered, and any later read that
    contradicts it -- an older version served back, an acked key gone
    missing, a deleted key resurrected -- raises
    :class:`~repro.errors.StaleReadError`.  This is the *client-centric*
    failover check: no replica, no oracle, just the MACs the client
    already computes.  The single-writer caveat applies: the tracker only
    speaks for this router's own acked writes, and batched ``put_many``
    keys drop their claims (the batch API does not return per-key MACs).

    ``near_cache`` adds a bounded client-side read cache
    (:mod:`repro.cache.nearcache`): a ``get`` whose cached entry passes
    every validity rule -- intact checksum, current ring epoch,
    unexpired lease, MAC equal to the freshness claim -- is served with
    no network round trip at all; anything less revalidates over the
    verified read path.  ``read_offload`` adds freshness-token reads
    against replica backups: the router picks a live backup whose
    applied log position has reached its own claimed position for the
    shard, reads through a dedicated attested session, and serves the
    result only when the payload MAC equals the claim -- every other
    outcome (lagging backup, miss, stale version, tamper, dead session)
    is a *counted fallback* to the primary, never an error.  Both
    features run the tracker in advisory mode unless ``track_freshness``
    is also set (strict mode keeps its single-writer contract).
    """

    def __init__(
        self,
        cluster,
        client_id: Optional[int] = None,
        keygen: Optional[KeyGenerator] = None,
        auto_pump: bool = True,
        expected_measurement: Optional[bytes] = None,
        trace_ops: bool = True,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0002,
        retry_backoff_cap_s: float = 0.01,
        track_freshness: bool = False,
        near_cache: bool = False,
        cache_entries: int = 256,
        cache_lease_ns: Optional[int] = None,
        cache_clock=None,
        read_offload: bool = False,
    ):
        self.cluster = cluster
        self.obs = cluster.obs
        self.client_id = (
            client_id if client_id is not None else allocate_client_id()
        )
        self.keygen = keygen if keygen is not None else KeyGenerator()
        self._auto_pump = auto_pump
        self._expected_measurement = expected_measurement
        self._trace_ops = trace_ops
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._retry_backoff_cap_s = retry_backoff_cap_s
        self._map = cluster.shard_map
        self._clients: Dict[str, PrecursorClient] = {}
        # Every session ever opened, keyed by server identity: failing
        # *back* to a member we already attested to must revive its old
        # session (our host is still attached to that server's fabric).
        self._by_server: Dict[int, PrecursorClient] = {}
        for name in cluster.shards:
            self._connect(name)

        #: Operations routed through this client, and stale-map events.
        self.operations = 0
        self.stale_retries = 0
        self.failovers = 0
        #: Sessions re-attested because a promotion swapped the primary.
        self.promotions_followed = 0
        registry = self.obs.registry
        self._obs_routed = {}
        self._obs_stale = registry.counter(
            "router_stale_retries_total",
            "operations re-routed after a shard-map epoch bump",
        )
        self._obs_failover = registry.counter(
            "recoveries_total",
            "recovery actions taken",
            {"kind": "failover"},
        )
        self._obs_promoted = registry.counter(
            "router_promotion_follows_total",
            "sessions re-attested against a promoted primary",
        )
        self._obs_detections = registry.counter(
            "client_staleness_detections_total",
            "client-side MAC-freshness staleness detections",
        )
        self._obs_cache_hits = registry.counter(
            "client_cache_hits_total",
            "near-cache hits served without a network read",
        )
        self._obs_cache_misses = registry.counter(
            "client_cache_misses_total",
            "near-cache lookups that fell through to a network read",
        )
        self._obs_cache_reval = registry.counter(
            "client_cache_revalidations_total",
            "cached entries refused (checksum/epoch/lease/claim) and "
            "revalidated over the verified read path",
        )
        self._obs_cache_entries = registry.gauge(
            "client_cache_entries",
            "live near-cache entries per routing client",
            {"client": str(self.client_id)},
        )
        self._obs_cache_migration_drops = registry.counter(
            "client_cache_migration_drops_total",
            "cached entries dropped because a shard-map change moved "
            "their key's owner",
        )
        self._obs_offload_served = registry.counter(
            "client_offload_reads_total",
            "backup-offloaded reads by outcome",
            {"result": "served"},
        )
        self._obs_offload = {}

        # The near-cache and the read offload both validate against the
        # freshness ledger, so enabling either brings the tracker up --
        # in *advisory* mode unless strict tracking was asked for
        # (pooled multi-writer workloads must not raise on overwrites).
        self.freshness: Optional[FreshnessTracker] = None
        if track_freshness or near_cache or read_offload:
            self.freshness = FreshnessTracker(
                strict=track_freshness,
                on_detection=self._obs_detections.inc,
            )
        self.cache: Optional[NearCache] = None
        if near_cache:
            # Leases tick on the obs clock by default; deterministic
            # harnesses (chaos) pass their own logical clock so lease
            # expiry -- and therefore read routing -- is reproducible.
            self.cache = NearCache(
                capacity=cache_entries,
                **({"lease_ns": cache_lease_ns} if cache_lease_ns else {}),
                clock=(
                    cache_clock
                    if cache_clock is not None
                    else self.obs.tracer.clock
                ),
            )
        self._offload = bool(read_offload)
        #: Dedicated attested backup-read sessions, keyed by server
        #: identity (shared with ``_by_server`` so promotions and
        #: demotions revive rather than re-attach).
        self._backup_sessions: Dict[int, PrecursorClient] = {}
        #: Per-shard log position of this client's last acked mutation
        #: (the ack's piggybacked LSN): a backup must have applied at
        #: least this much before it may serve this client's reads.
        self._claimed_lsn: Dict[str, int] = {}
        #: Where the last ``get`` was served from: cache|backup|primary.
        self.last_read_path = "primary"
        self.offload_reads = 0
        self.offload_fallbacks = 0

    # -- connections -------------------------------------------------------

    def _connect(self, shard: str) -> PrecursorClient:
        client = PrecursorClient(
            self.cluster.server(shard),
            client_id=self.client_id,
            keygen=self.keygen,
            auto_pump=self._auto_pump,
            expected_measurement=self._expected_measurement,
            obs=self.obs,
            trace_ops=False,  # the router traces whole routed operations
            max_retries=self._max_retries,
            retry_backoff_s=self._retry_backoff_s,
            retry_backoff_cap_s=self._retry_backoff_cap_s,
        )
        self._clients[shard] = client
        self._by_server[id(client.server)] = client
        return client

    def _client(self, shard: str) -> PrecursorClient:
        client = self._clients.get(shard)
        if client is not None:
            # A retired shard (stale-map route) has no cluster entry; the
            # kept session answers NOT_FOUND and the epoch retry re-routes.
            current = getattr(self.cluster, "_servers", {}).get(shard)
            if current is not None and client.server is not current:
                # A failover promoted a different member behind this shard
                # name: the old session's QPs died with the old primary, so
                # re-attest against the new one.  (A *restarted* server is
                # the same object -- plain reconnects keep their session.)
                self.promotions_followed += 1
                self._obs_promoted.inc()
                self.obs.hop("reattach", shard=shard)
                # Everything this shard cached was read from the old
                # primary; the promotion fence (epoch bump) already
                # refuses it lazily, dropping it eagerly frees the
                # space and keeps the invariant visible.
                self._drop_cached_shard(shard)
                # The promoted member's backup-read session (if any)
                # graduates to the primary session below.
                self._backup_sessions.pop(id(current), None)
                cached = self._by_server.get(id(current))
                if cached is not None:
                    # Failing *back* to a member we once held a session
                    # with (e.g. the original primary after a rejoin):
                    # revive that session with a full reconnect handshake
                    # rather than re-attaching our host to its fabric.
                    cached.revive()
                    self._clients[shard] = cached
                    return cached
                client = None
        if client is None:
            # A shard that joined after this router connected, or a
            # promoted primary: attest and open a session on first contact.
            client = self._connect(shard)
        return client

    @property
    def sessions(self) -> Dict[str, PrecursorClient]:
        """Live per-shard sessions (shard name -> client)."""
        return dict(self._clients)

    def _all_sessions(self):
        """Every distinct underlying session (primary + backup-read)."""
        seen: Dict[int, PrecursorClient] = {}
        for client in self._clients.values():
            seen[id(client)] = client
        for client in self._backup_sessions.values():
            seen[id(client)] = client
        return seen.values()

    @property
    def integrity_failures(self) -> int:
        """MAC verification failures across every session."""
        return sum(c.integrity_failures for c in self._all_sessions())

    @property
    def retries(self) -> int:
        """Operation retries across every session."""
        return sum(c.retries for c in self._all_sessions())

    @property
    def reconnects(self) -> int:
        """Reconnects (QP + re-attestation) across every session."""
        return sum(c.reconnects for c in self._all_sessions())

    # -- shard map handling ------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch of the cached shard-map snapshot."""
        return self._map.epoch

    def refresh_map(self) -> bool:
        """Re-fetch the shard map; returns True when it had changed."""
        current = self.cluster.shard_map
        if current.epoch == self._map.epoch:
            return False
        self._map = current
        self._drop_moved_entries(current)
        return True

    def _drop_moved_entries(self, current) -> None:
        """Eagerly drop cached entries whose keys changed owner.

        Voluntary joins/leaves move key ranges without any promotion, so
        the re-attestation drop path never fires -- yet the moved keys'
        entries are now filled against the wrong shard.  The epoch fence
        would refuse them lazily one lookup at a time; dropping them the
        moment the router adopts the new map keeps the LRU honest under
        autoscaler-driven churn.
        """
        if self.cache is None:
            return
        dropped = self.cache.drop_moved(current.owner)
        if dropped:
            self._obs_cache_migration_drops.inc(dropped)
            self._obs_cache_entries.set(self.cache.entries)
            self.obs.hop(
                "cache_migration_drop",
                epoch=current.epoch,
                dropped=dropped,
            )

    def _note_stale(self) -> None:
        self.stale_retries += 1
        self._obs_stale.inc()
        self.obs.hop("stale_retry", epoch=self._map.epoch)

    def _route(self, key: bytes, fenced: bool) -> Tuple[PrecursorClient, str]:
        """Pick the shard for ``key``; fence writes against stale epochs."""
        if fenced and self.cluster.shard_map.epoch != self._map.epoch:
            self.refresh_map()
            self._note_stale()
        shard = self._map.owner(key)
        counter = self._obs_routed.get(shard)
        if counter is None:
            counter = self.obs.registry.counter(
                "router_routed_ops_total",
                "operations routed to each shard",
                {"shard": shard},
            )
            self._obs_routed[shard] = counter
        counter.inc()
        self.obs.hop(
            "route", shard=shard, epoch=self._map.epoch, fenced=fenced
        )
        return self._client(shard), shard

    # -- failover ----------------------------------------------------------

    def _failover(self, shard: str) -> None:
        """Route around a dead shard: drop it from the ring, refresh."""
        self.cluster.handle_shard_failure(shard)
        self.refresh_map()
        self._drop_cached_shard(shard)
        self.failovers += 1
        self._obs_failover.inc()
        self.obs.hop("failover", shard=shard)

    def _failover_retry(self, key: bytes, fenced: bool, fn):
        """Run ``fn(client)`` against ``key``'s owner, surviving its death.

        Three recoveries are possible, tried in order:

        - a replica **promotion** already swapped the member behind the
          shard name (the cluster's server for the shard is alive but is
          not this session's server): refresh the fence epoch and retry
          -- ``_client`` re-attests against the new primary;
        - the shard is down with nothing promoted: mark it failed
          cluster-wide (ring minus shard, epoch bump) and retry against
          the new owner.  The dead shard's session object is *kept*: on
          restore the same client reconnects and resumes its oid
          sequence.
        - the member is alive and *is* this session's server, yet the
          exchange died at the transport: the server crashed and came
          back behind our back while no operation routed here (crash ->
          rejoin -> re-promotion leaves the same object primary again,
          with this session's QPs errored by the original crash).
          Revive the session -- full handshake plus oid realignment
          against the restarted replay filter -- and retry.

        Failures that are none of these propagate unchanged.
        """
        with self.obs.tracer.stage("router.route"):
            client, shard = self._route(key, fenced=fenced)
        try:
            return fn(client)
        except (ShardUnavailableError, AccessError, OperationTimeoutError):
            current = self.cluster.server(shard)
            if not current.crashed and current is not client.server:
                # Failover fence: a backup was promoted under a bumped
                # epoch; pick it up and re-route.
                self.refresh_map()
                self.obs.hop("promotion_follow", shard=shard)
            elif current.crashed:
                self._failover(shard)
            else:
                self.refresh_map()
                self.obs.hop("revive", shard=shard)
                client.revive()
            with self.obs.tracer.stage("router.route"):
                client, _shard = self._route(key, fenced=fenced)
            return fn(client)

    # -- tracing -----------------------------------------------------------

    def _start_trace(self, op: str) -> Optional[Trace]:
        if not self._trace_ops:
            return None
        tracer = self.obs.tracer
        if tracer.current is not None:
            return None
        return tracer.start(op, client_id=self.client_id, routed=True)

    def _begin_context(self, op: str):
        """Mint the causal trace context for one routed operation.

        Mirrors :meth:`_start_trace`: only when tracing is on and no
        context is already active on this thread (so a caller running
        under its own context keeps it -- the hops nest there).
        """
        if not self._trace_ops:
            return None
        ctxlog = self.obs.ctxlog
        if ctxlog.current is not None:
            return None
        return ctxlog.begin(op, client_id=self.client_id)

    def _end_context(self, context, status: str) -> None:
        """Seal the context minted by :meth:`_begin_context`, if any."""
        if context is not None:
            self.obs.ctxlog.end(status)

    def _observe(self, key: bytes, op: str, t0_ns: int, ok: bool) -> None:
        """Feed the routed operation's latency to the telemetry pipeline."""
        pipeline = self.obs.telemetry
        if pipeline is None:
            return
        latency = self.obs.tracer.clock.now_ns() - t0_ns
        pipeline.observe(self._map.owner(key), op, latency, ok=ok)

    # -- near-cache --------------------------------------------------------

    def _cache_lookup(self, key: bytes) -> Optional[bytes]:
        """Serve ``key`` from the near-cache when every rule holds.

        The validation token is the freshness claim and the fence is the
        *authoritative* ring epoch (not this router's possibly stale
        snapshot): a promotion that bumped the epoch an instant ago
        must already refuse the pre-failover entry, even before any
        operation noticed the bump.
        """
        cache = self.cache
        claim = self.freshness.claim(key)
        if claim is None:
            # No claim, or a tombstone: nothing to validate a hit
            # against -- read through (which establishes a claim).
            cache.misses += 1
            self._obs_cache_misses.inc()
            return None
        before = cache.revalidations
        value = cache.lookup(key, self.cluster.shard_map.epoch, claim)
        if value is not None:
            self._obs_cache_hits.inc()
            return value
        self._obs_cache_misses.inc()
        if cache.revalidations > before:
            self._obs_cache_reval.inc()
        return None

    def _cache_fill(self, key: bytes, value: bytes, mac: bytes) -> None:
        """Cache a verified read / acked write under the current epoch."""
        if self.cache is None:
            return
        self.cache.fill(
            key, value, mac,
            shard=self._map.owner(key),
            epoch=self.cluster.shard_map.epoch,
        )
        self._obs_cache_entries.set(self.cache.entries)

    def _cache_invalidate(self, key: bytes) -> None:
        if self.cache is not None and self.cache.invalidate(key):
            self._obs_cache_entries.set(self.cache.entries)

    def _drop_cached_shard(self, shard: str) -> None:
        if self.cache is not None and self.cache.drop_shard(shard):
            self._obs_cache_entries.set(self.cache.entries)

    def drop_cache(self) -> int:
        """Empty the near-cache (forces every next read to the store)."""
        if self.cache is None:
            return 0
        dropped = self.cache.clear()
        self._obs_cache_entries.set(0)
        return dropped

    def cache_stats(self) -> Optional[dict]:
        """Near-cache counter snapshot, or None when caching is off."""
        return None if self.cache is None else self.cache.stats()

    # -- backup read offload -----------------------------------------------

    def _note_claimed_lsn(self, key: bytes) -> None:
        """Record the acked mutation's log position for ``key``'s shard.

        Models the ack frame piggybacking its log LSN: the record was
        logged before the ack existed, so the group's newest LSN at ack
        time upper-bounds (and here equals) the write's position.
        """
        if not self._offload:
            return
        shard = self._map.owner(key)
        try:
            group = self.cluster.group(shard)
        except PrecursorError:
            return
        self._claimed_lsn[shard] = group.last_lsn

    def _offload_fallback(self, reason: str) -> None:
        self.offload_fallbacks += 1
        counter = self._obs_offload.get(reason)
        if counter is None:
            counter = self.obs.registry.counter(
                "client_offload_reads_total",
                "backup-offloaded reads by outcome",
                {"result": f"fallback_{reason}"},
            )
            self._obs_offload[reason] = counter
        counter.inc()
        self.obs.hop("offload_fallback", reason=reason)

    def _backup_client(self, backup) -> Optional[PrecursorClient]:
        """The attested backup-read session for ``backup``, or None.

        Reuses a session we once held with the member in any role (a
        demoted ex-primary after a rejoin) via a full revive; otherwise
        attests fresh.  Returns None when the handshake fails -- the
        caller falls back to the primary.
        """
        session = self._backup_sessions.get(id(backup))
        if session is not None:
            return session
        session = self._by_server.get(id(backup))
        if session is not None:
            try:
                session.revive()
            except PrecursorError:
                return None
            self._backup_sessions[id(backup)] = session
            return session
        try:
            session = PrecursorClient(
                backup,
                client_id=self.client_id,
                keygen=self.keygen,
                auto_pump=self._auto_pump,
                expected_measurement=self._expected_measurement,
                obs=self.obs,
                trace_ops=False,
                max_retries=self._max_retries,
                retry_backoff_s=self._retry_backoff_s,
                retry_backoff_cap_s=self._retry_backoff_cap_s,
            )
        except PrecursorError:
            return None
        self._backup_sessions[id(backup)] = session
        self._by_server[id(backup)] = session
        return session

    def _offload_read(self, key: bytes):
        """Try a freshness-token read on a backup; None => use the primary.

        The contract (``docs/CACHING.md``): the client only accepts a
        backup's answer when (a) the backup's applied log position has
        reached the client's claimed position for the shard and (b) the
        returned payload MAC equals the client's freshness claim for the
        key.  Every other outcome is a counted fallback -- a lagging
        backup under ``inject_lag`` or an async window degrades to a
        primary read, it never produces an error or a stale value.
        """
        if not self.freshness.expects_value(key):
            return None  # no token to attach; the primary read adopts one
        shard = self._map.owner(key)
        try:
            group = self.cluster.group(shard)
        except PrecursorError:
            return None  # retired/unknown shard: let the normal path route
        if not group.backups:
            return None
        backup = group.backup_read_target(self._claimed_lsn.get(shard, 0))
        if backup is None:
            self._offload_fallback("lagging")
            return None
        client = self._backup_client(backup)
        if client is None:
            self._offload_fallback("session")
            return None
        try:
            value = client.get(key)
            mac = client.last_payload_mac
        except KeyNotFoundError:
            self._offload_fallback("miss")
            return None
        except IntegrityError:
            # A torn/tampered backup record: the MAC check caught it,
            # the primary still holds the good copy.
            self._offload_fallback("tamper")
            return None
        except PrecursorError:
            self._offload_fallback("unavailable")
            self._backup_sessions.pop(id(backup), None)
            return None
        if self.freshness.matches(key, mac) is not True:
            # An older version than the claim (an applied-LSN race or a
            # resurrection): never accept it, never accuse the backup.
            self._offload_fallback("stale")
            return None
        self.offload_reads += 1
        self._obs_offload_served.inc()
        return value, mac

    # -- key-value API -----------------------------------------------------

    def _check_absent(self, key: bytes) -> None:
        """A final NOT_FOUND: stale-loss check before it propagates.

        Runs only after the epoch-retry resolved (no pending map bump),
        so a NOT_FOUND that merely raced a migration never reaches it.
        """
        if self.freshness is not None:
            self.freshness.check_absent(key)

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key`` on its owning shard (epoch-fenced)."""
        trace = self._start_trace("put")
        context = self._begin_context("put")
        t0_ns = self.obs.tracer.clock.now_ns()
        try:
            mac = self._failover_retry(key, True, lambda c: c.put(key, value))
            if self.freshness is not None:
                self.freshness.note_write(key, mac)
            # The client holds plaintext + acked MAC right here: an ack
            # is a free cache fill (and the ack's log position bounds
            # which backups may serve this client from now on).
            self._cache_fill(key, value, mac)
            self._note_claimed_lsn(key)
            self.operations += 1
        except BaseException as exc:
            if self.freshness is not None:
                # Unknown outcome: this key can no longer anchor a
                # staleness claim.
                self.freshness.forget(key)
            self._cache_invalidate(key)
            self._observe(key, "put", t0_ns, ok=False)
            self._end_context(context, f"error:{type(exc).__name__}")
            if trace is not None:
                trace.abort()
            raise
        self._observe(key, "put", t0_ns, ok=True)
        self._end_context(context, "ok")
        if trace is not None:
            trace.finish()

    def get(self, key: bytes) -> bytes:
        """Fetch and verify ``key``, retrying once after an epoch bump.

        With freshness tracking on, the verified payload MAC is compared
        against the last acknowledged write of ``key``; a mismatch (or a
        NOT_FOUND contradicting an acked write) raises
        :class:`~repro.errors.StaleReadError`.

        With the near-cache on, a validated hit short-circuits the
        network entirely; with the read offload on, a qualifying backup
        serves the read and the primary is only consulted on fallback.
        :attr:`last_read_path` records which lane answered
        (``cache`` | ``backup`` | ``primary``).
        """
        trace = self._start_trace("get")
        context = self._begin_context("get")
        t0_ns = self.obs.tracer.clock.now_ns()
        self.last_read_path = "primary"

        def fetch(client: PrecursorClient):
            fetched = client.get(key)
            return fetched, client.last_payload_mac

        try:
            if self.cache is not None:
                cached = self._cache_lookup(key)
                if cached is not None:
                    self.last_read_path = "cache"
                    self.operations += 1
                    self._observe(key, "get", t0_ns, ok=True)
                    self._end_context(context, "ok")
                    if trace is not None:
                        trace.finish()
                    return cached
            if self._offload:
                offloaded = self._offload_read(key)
                if offloaded is not None:
                    value, mac = offloaded
                    self.last_read_path = "backup"
                    self._cache_fill(key, value, mac)
                    self.operations += 1
                    self._observe(key, "get", t0_ns, ok=True)
                    self._end_context(context, "ok")
                    if trace is not None:
                        trace.finish()
                    return value
            try:
                value, mac = self._failover_retry(key, False, fetch)
            except KeyNotFoundError:
                # Either a true miss or a stale route that raced a
                # migration; only an epoch bump warrants a retry.
                if not self.refresh_map():
                    self._check_absent(key)
                    raise
                self._note_stale()
                try:
                    value, mac = self._failover_retry(key, False, fetch)
                except KeyNotFoundError:
                    self._check_absent(key)
                    raise
            if self.freshness is not None:
                self.freshness.check_read(key, mac)
            self._cache_fill(key, value, mac)
            self.operations += 1
        except BaseException as exc:
            # Whatever failed, the cached entry no longer has a story
            # that ends in a valid hit (detected staleness, a confirmed
            # miss, an unreachable shard): drop it so the next read
            # revalidates from the store.
            self._cache_invalidate(key)
            self._observe(key, "get", t0_ns, ok=False)
            self._end_context(context, f"error:{type(exc).__name__}")
            if trace is not None:
                trace.abort()
            raise
        self._observe(key, "get", t0_ns, ok=True)
        self._end_context(context, "ok")
        if trace is not None:
            trace.finish()
        return value

    def delete(self, key: bytes) -> None:
        """Delete ``key``, retrying once after an epoch bump."""
        trace = self._start_trace("delete")
        context = self._begin_context("delete")
        t0_ns = self.obs.tracer.clock.now_ns()
        try:
            try:
                self._failover_retry(key, False, lambda c: c.delete(key))
            except KeyNotFoundError:
                if not self.refresh_map():
                    # An acked value that cannot be deleted because it is
                    # already gone is a detected loss, not a miss.
                    self._check_absent(key)
                    raise
                self._note_stale()
                try:
                    self._failover_retry(key, False, lambda c: c.delete(key))
                except KeyNotFoundError:
                    self._check_absent(key)
                    raise
            if self.freshness is not None:
                self.freshness.note_delete(key)
            self._cache_invalidate(key)
            self._note_claimed_lsn(key)
            self.operations += 1
        except KeyNotFoundError as exc:
            self._observe(key, "delete", t0_ns, ok=False)
            self._end_context(context, f"error:{type(exc).__name__}")
            if trace is not None:
                trace.abort()
            raise
        except BaseException as exc:
            if self.freshness is not None:
                self.freshness.forget(key)
            self._cache_invalidate(key)
            self._observe(key, "delete", t0_ns, ok=False)
            self._end_context(context, f"error:{type(exc).__name__}")
            if trace is not None:
                trace.abort()
            raise
        self._observe(key, "delete", t0_ns, ok=True)
        self._end_context(context, "ok")
        if trace is not None:
            trace.finish()

    # -- batched operations ------------------------------------------------

    def _group_by_shard(self, keys) -> Dict[str, List[int]]:
        """Request indices per owning shard, under the cached map."""
        groups: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(self._map.owner(key), []).append(index)
        return groups

    def put_many(self, items) -> int:
        """Fan a batch of puts out per shard; returns the stored count.

        Epoch-fenced like :meth:`put`: the whole batch runs under one map
        snapshot validated up front, so every item lands on its owner.
        """
        items = list(items)
        if self.cluster.shard_map.epoch != self._map.epoch:
            self.refresh_map()
            self._note_stale()
        if self.freshness is not None:
            # The batch API returns no per-key MACs; batched keys stop
            # anchoring staleness claims (single-key puts restore them)
            # and their cached entries die with the claims.
            for key, _value in items:
                self.freshness.forget(key)
                self._cache_invalidate(key)
        groups = self._group_by_shard([key for key, _value in items])
        stored = 0
        for shard, indices in groups.items():
            stored += self._client(shard).put_many(
                [items[i] for i in indices]
            )
            counter = self._obs_routed.get(shard)
            if counter is not None:
                counter.inc(len(indices))
        self.operations += len(items)
        return stored

    def get_many(self, keys) -> list:
        """Fan a batch of gets out per shard; replies merge in key order.

        Retries the remaining misses once when a concurrent epoch bump is
        detected mid-batch.
        """
        keys = list(keys)
        groups = self._group_by_shard(keys)
        values: List[Optional[bytes]] = [None] * len(keys)
        try:
            for shard, indices in groups.items():
                fetched = self._client(shard).get_many(
                    [keys[i] for i in indices]
                )
                for index, value in zip(indices, fetched):
                    values[index] = value
        except KeyNotFoundError:
            if not self.refresh_map():
                raise
            self._note_stale()
            # The aborted window may have left replies queued on the
            # session that raised; drop them before re-issuing.
            for client in self._clients.values():
                client.drain_replies()
            missing = [i for i, v in enumerate(values) if v is None]
            for shard, indices in self._group_by_shard(
                [keys[i] for i in missing]
            ).items():
                fetched = self._client(shard).get_many(
                    [keys[missing[j]] for j in indices]
                )
                for j, value in zip(indices, fetched):
                    values[missing[j]] = value
        self.operations += len(keys)
        return values
