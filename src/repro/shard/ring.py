"""Deterministic consistent-hash ring with virtual nodes.

Precursor's client-centric split makes the server almost stateless per
request, so horizontal partitioning is the natural scale-out move: each
shard runs its own enclave (own EPC budget, own replay table) and owns a
slice of the key space.  The ring decides ownership:

- every shard contributes ``vnodes`` *virtual nodes*, placed by hashing
  ``(seed, shard, replica)`` -- placement is fully deterministic under a
  seed, so every client and every test derives the identical ring;
- a key is owned by the first virtual node clockwise from the key's hash;
- adding or removing one shard moves only the keys that fall between the
  new/old virtual nodes and their predecessors -- in expectation a
  ``1/(n+1)`` (join) or ``1/n`` (leave) fraction of the key space, the
  consistent-hashing minimal-movement invariant the tests pin down.

The ring is immutable: :meth:`with_shard` / :meth:`without_shard` return
new rings, which is what lets the shard map version them under epochs
(:mod:`repro.shard.cluster`) while in-flight clients keep routing on a
stale snapshot until they observe the bump.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["HashRing"]

#: Default virtual nodes per shard; 128 keeps per-shard load within a few
#: percent of uniform while the ring stays small enough to rebuild on
#: every membership change.
DEFAULT_VNODES = 128


def _hash64(data: bytes) -> int:
    """First 8 bytes of SHA-256 as an unsigned 64-bit ring position."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named shards."""

    def __init__(
        self,
        shards: Sequence[str],
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ):
        names = list(shards)
        if not names:
            raise ConfigurationError("a ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shard names: {names}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._shards: Tuple[str, ...] = tuple(names)
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                point = _hash64(f"vnode:{seed}:{name}:{replica}".encode())
                points.append((point, name))
        # Ties are broken by shard name so the ring is a pure function of
        # (shards, vnodes, seed) regardless of insertion order.
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]

    # -- routing -----------------------------------------------------------

    @staticmethod
    def key_position(key: bytes) -> int:
        """Ring position of ``key`` (placement-seed independent)."""
        return _hash64(b"key:" + bytes(key))

    def route(self, key: bytes) -> str:
        """Shard owning ``key``: first virtual node clockwise."""
        index = bisect.bisect_right(self._positions, self.key_position(key))
        if index == len(self._points):
            index = 0  # wrap around
        return self._points[index][1]

    def load_split(self, keys: Iterable[bytes]) -> Dict[str, int]:
        """Count how many of ``keys`` each shard owns (all shards listed)."""
        counts = {name: 0 for name in self._shards}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    # -- membership --------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        """Member shard names, in construction order."""
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def with_shard(self, name: str) -> "HashRing":
        """New ring with ``name`` joined (same vnodes/seed)."""
        if name in self._shards:
            raise ConfigurationError(f"shard {name!r} already in the ring")
        return HashRing(
            list(self._shards) + [name], vnodes=self.vnodes, seed=self.seed
        )

    def without_shard(self, name: str) -> "HashRing":
        """New ring with ``name`` removed (same vnodes/seed)."""
        if name not in self._shards:
            raise ConfigurationError(f"shard {name!r} not in the ring")
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard")
        return HashRing(
            [s for s in self._shards if s != name],
            vnodes=self.vnodes,
            seed=self.seed,
        )

    def moved_keys(self, other: "HashRing", keys: Iterable[bytes]) -> List[bytes]:
        """Keys whose owner differs between this ring and ``other``."""
        return [key for key in keys if self.route(key) != other.route(key)]
