"""A socket-style message transport with a kernel-stack cost model.

Functional side: :class:`TcpFabric` wires :class:`TcpEndpoint` pairs with
length-prefixed message framing over in-memory byte streams -- enough to
run the full ShieldStore request/response protocol for real.

Timing side: :class:`TcpCostModel` prices one message: syscall entry/exit,
kernel protocol processing, an interrupt + scheduler wakeup at the
receiver, per-byte copy costs, and wire serialization.  The defaults are
calibrated so the RDMA:TCP latency ratio for small messages is ~26x
(paper §5.4) on the testbed's clock rates.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError

__all__ = ["TcpFabric", "TcpEndpoint", "TcpCostModel"]

_LEN_FMT = ">I"
_LEN_SIZE = 4


@dataclass(frozen=True)
class TcpCostModel:
    """Latency model for one TCP message through the kernel stack."""

    #: Link rate in Gbit/s.
    bandwidth_gbps: float = 40.0
    #: Syscall + socket layer on the sender (ns).
    send_syscall_ns: int = 3_000
    #: Kernel TCP/IP processing per message, each side (ns).
    kernel_processing_ns: int = 8_000
    #: Interrupt, softirq and scheduler wakeup at the receiver (ns).
    interrupt_wakeup_ns: int = 12_000
    #: Per-byte copy cost user<->kernel (ns per byte).
    copy_ns_per_byte: float = 0.03
    #: Propagation/switching (ns).
    propagation_ns: int = 1_000

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def one_way_ns(self, nbytes: int) -> int:
        """Latency for one message of ``nbytes`` from send() to recv()."""
        if nbytes < 0:
            raise ConfigurationError(f"negative size: {nbytes}")
        serialization = nbytes * 8 / self.bandwidth_gbps  # ns
        copies = 2 * self.copy_ns_per_byte * nbytes  # both sides
        return int(
            round(
                self.send_syscall_ns
                + 2 * self.kernel_processing_ns
                + self.interrupt_wakeup_ns
                + self.propagation_ns
                + serialization
                + copies
            )
        )


class TcpEndpoint:
    """One side of a connected, framed, in-memory TCP stream."""

    def __init__(self, name: str):
        self.name = name
        self._peer: Optional["TcpEndpoint"] = None
        self._rx: Deque[bytes] = deque()
        self._rx_stream = bytearray()
        self.messages_sent = 0
        self.bytes_sent = 0

    def _attach(self, peer: "TcpEndpoint") -> None:
        self._peer = peer

    def send(self, message: bytes) -> None:
        """Frame and transmit one message to the peer."""
        if self._peer is None:
            raise ProtocolError(f"endpoint {self.name!r} is not connected")
        frame = struct.pack(_LEN_FMT, len(message)) + message
        # Model the byte stream: frames may arrive coalesced; the receiver
        # reassembles from the stream buffer.
        self._peer._rx_stream.extend(frame)
        self._peer._drain_stream()
        self.messages_sent += 1
        self.bytes_sent += len(frame)

    def _drain_stream(self) -> None:
        stream = self._rx_stream
        while True:
            if len(stream) < _LEN_SIZE:
                return
            (length,) = struct.unpack(_LEN_FMT, stream[:_LEN_SIZE])
            if len(stream) < _LEN_SIZE + length:
                return
            self._rx.append(bytes(stream[_LEN_SIZE : _LEN_SIZE + length]))
            del stream[: _LEN_SIZE + length]

    def recv(self) -> Optional[bytes]:
        """Return the next complete message, or None if none pending."""
        return self._rx.popleft() if self._rx else None

    def pending(self) -> int:
        """Number of complete messages waiting."""
        return len(self._rx)


class TcpFabric:
    """Creates connected endpoint pairs and carries the cost model."""

    def __init__(self, cost_model: TcpCostModel = None):
        self.cost_model = cost_model if cost_model is not None else TcpCostModel()
        self.connections = 0

    def connect(self, client_name: str, server_name: str) -> Tuple[TcpEndpoint, TcpEndpoint]:
        """Return a connected (client_endpoint, server_endpoint) pair."""
        client = TcpEndpoint(client_name)
        server = TcpEndpoint(server_name)
        client._attach(server)
        server._attach(client)
        self.connections += 1
        return client, server
