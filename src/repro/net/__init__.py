"""Traditional kernel TCP networking (the ShieldStore transport).

ShieldStore clients and server interact through socket-based primitives
(paper §5.1).  Compared to one-sided RDMA this path pays system calls,
kernel protocol processing, interrupts and buffer copies on every message --
the paper attributes ShieldStore's latency outliers to "scheduling, kernel
processing and TCP buffering" and measures the right networking technology
alone as a ~26x latency reduction (§5.4).
"""

from repro.net.tcp import TcpCostModel, TcpEndpoint, TcpFabric

__all__ = ["TcpFabric", "TcpEndpoint", "TcpCostModel"]
