"""YCSB-style workload generation (Cooper et al., SoCC '10).

The paper evaluates with YCSB's uniform workloads (§5.1):

- **A** -- update-heavy, 50 % read / 50 % update;
- **B** -- read-mostly, 95 % read / 5 % update;
- **C** -- read-only, 100 % read;
- **update-mostly** -- 5 % read / 95 % update (the paper's fourth mix).

This package provides the workload mixes, uniform and zipfian key
choosers, deterministic value generation for arbitrary value sizes, and a
closed-loop driver usable against any of the three systems' clients.
"""

from repro.ycsb.driver import WorkloadDriver, WorkloadResult
from repro.ycsb.generator import (
    KeyChooser,
    LatestChooser,
    OperationStream,
    UniformChooser,
    ZipfianChooser,
    make_key,
    make_value,
    stream_seed,
)
from repro.ycsb.workload import (
    UPDATE_MOSTLY,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WorkloadSpec,
)

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "UPDATE_MOSTLY",
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "OperationStream",
    "make_key",
    "make_value",
    "stream_seed",
    "WorkloadDriver",
    "WorkloadResult",
]
