"""Closed-loop workload driver for the functional layer.

Runs an :class:`~repro.ycsb.generator.OperationStream` against any client
exposing ``put``/``get`` (Precursor, the server-encryption variant, or
ShieldStore) and reports counts plus wall-clock throughput.  This drives
*real* pure-Python cryptography, so it is meant for integration tests and
examples -- the paper-scale throughput numbers come from the
discrete-event simulations in :mod:`repro.bench`, which charge calibrated
costs instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.protocol import OpCode
from repro.errors import ConfigurationError, KeyNotFoundError, SimulationError
from repro.sim.stats import LatencyRecorder
from repro.ycsb.generator import OperationStream
from repro.ycsb.workload import WorkloadSpec

__all__ = ["WorkloadDriver", "WorkloadResult"]


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one driver run."""

    operations: int
    reads: int
    updates: int
    misses: int
    elapsed_seconds: float
    #: Per-operation wall-clock latencies (ns), for tail analysis.
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def ops_per_second(self) -> float:
        """Functional-layer throughput (pure-Python crypto; not the
        simulated numbers the paper's figures are compared against).

        Raises :class:`~repro.errors.SimulationError` on an empty or
        zero/negative-duration result -- the same contract as
        :meth:`~repro.sim.stats.LatencyRecorder.percentile` and
        :meth:`~repro.sim.stats.ThroughputMeter.kops`, instead of the
        silent ``0.0`` this used to return.
        """
        if self.operations == 0:
            raise SimulationError(
                "no operations completed; throughput is undefined "
                "(check operations before querying)"
            )
        if self.elapsed_seconds <= 0:
            raise SimulationError(
                "workload elapsed time is not positive; throughput is "
                "undefined (the run never consumed wall-clock time)"
            )
        return self.operations / self.elapsed_seconds


class WorkloadDriver:
    """Runs a workload spec against one client object."""

    def __init__(
        self, client, spec: WorkloadSpec, seed: int = 0, client_id: int = 0
    ):
        for method in ("put", "get"):
            if not callable(getattr(client, method, None)):
                raise ConfigurationError(
                    f"client must expose a callable {method}()"
                )
        self.client = client
        self.spec = spec
        self.stream = OperationStream(spec, seed=seed, client_id=client_id)

    def load(self, records: int = None) -> int:
        """Insert the first ``records`` warm-up rows (default: all)."""
        limit = records if records is not None else self.spec.record_count
        count = 0
        for key, value in self.stream.load_phase():
            if count >= limit:
                break
            self.client.put(key, value)
            count += 1
        return count

    def run(self, operations: int) -> WorkloadResult:
        """Execute ``operations`` mixed requests in a closed loop."""
        if operations < 1:
            raise ConfigurationError("operations must be positive")
        reads = updates = misses = 0
        latency = LatencyRecorder()
        started = time.perf_counter()
        for _ in range(operations):
            opcode, key, value = self.stream.next_operation()
            op_start = time.perf_counter_ns()
            if opcode is OpCode.GET:
                reads += 1
                try:
                    self.client.get(key)
                except KeyNotFoundError:
                    misses += 1
            else:
                updates += 1
                self.client.put(key, value)
            latency.record(time.perf_counter_ns() - op_start)
        elapsed = time.perf_counter() - started
        return WorkloadResult(
            operations=operations,
            reads=reads,
            updates=updates,
            misses=misses,
            elapsed_seconds=elapsed,
            latency=latency,
        )
