"""Workload mixes: read/update ratios and record parameters."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "UPDATE_MOSTLY",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One YCSB workload configuration.

    ``read_fraction`` of operations are GETs; the rest are PUTs (YCSB
    "update" = full-record overwrite, which is what Precursor's put() is).
    """

    name: str
    read_fraction: float
    record_count: int = 600_000  # the paper's warm-up size (§5.2)
    key_size: int = 16
    value_size: int = 32  # the paper's default (MemC3-style, §5.2)
    distribution: str = "uniform"  # "uniform" | "zipfian"

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError(
                f"read_fraction must be in [0, 1]: {self.read_fraction}"
            )
        if self.record_count < 1:
            raise ConfigurationError("record_count must be positive")
        if self.key_size < 1 or self.value_size < 1:
            raise ConfigurationError("key and value sizes must be positive")
        if self.distribution not in ("uniform", "zipfian", "latest"):
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}"
            )

    @property
    def update_fraction(self) -> float:
        """Fraction of operations that are updates."""
        return 1.0 - self.read_fraction

    def with_value_size(self, value_size: int) -> "WorkloadSpec":
        """Copy of this spec with a different value size (Fig. 5 sweeps)."""
        return replace(self, value_size=value_size)

    def with_record_count(self, record_count: int) -> "WorkloadSpec":
        """Copy with a different dataset size (e.g. 3 M for EPC paging)."""
        return replace(self, record_count=record_count)


#: YCSB A: update-heavy, 50 % read / 50 % update.
WORKLOAD_A = WorkloadSpec(name="A (update-heavy)", read_fraction=0.50)

#: YCSB B: read-mostly, 95 % read / 5 % update.
WORKLOAD_B = WorkloadSpec(name="B (read-mostly)", read_fraction=0.95)

#: YCSB C: read-only.
WORKLOAD_C = WorkloadSpec(name="C (read-only)", read_fraction=1.0)

#: The paper's fourth mix: update-mostly, 5 % read / 95 % update.
UPDATE_MOSTLY = WorkloadSpec(name="update-mostly", read_fraction=0.05)
