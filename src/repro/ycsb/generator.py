"""Key choosers, value synthesis and operation streams.

Key popularity follows either the uniform distribution (the paper
"concentrate[s] on the uniform YCSB workload", §5.1) or YCSB's scrambled
zipfian (provided for sensitivity studies).  Everything is deterministic
under a seed so experiments are exactly repeatable.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator, Tuple

from repro.core.protocol import OpCode
from repro.errors import ConfigurationError
from repro.ycsb.workload import WorkloadSpec

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "LatestChooser",
    "make_key",
    "make_value",
    "stream_seed",
    "OperationStream",
]


def stream_seed(seed: int, client_id: int = 0) -> int:
    """Effective RNG seed for one client's operation stream.

    Multi-client runs (e.g. one router per simulated YCSB process, see
    :mod:`repro.shard`) need *disjoint but reproducible* streams per
    client.  ``client_id == 0`` maps to ``seed`` unchanged, so
    single-client runs stay bit-identical across releases; any other id
    derives an independent 64-bit seed from the pair.
    """
    if client_id == 0:
        return seed
    digest = hashlib.sha256(f"stream:{seed}:{client_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def make_key(index: int, key_size: int = 16) -> bytes:
    """Deterministic key for record ``index`` (YCSB's ``user<hash>``)."""
    digest = hashlib.sha256(f"user{index}".encode()).hexdigest()
    key = f"u{digest}".encode()[:key_size]
    return key.ljust(key_size, b"0")


def make_value(index: int, value_size: int, version: int = 0) -> bytes:
    """Deterministic value bytes for record ``index`` at ``version``.

    Repeating a short digest keeps generation O(size) with recognisable
    structure for debugging.
    """
    if value_size < 1:
        raise ConfigurationError("value_size must be positive")
    seed = hashlib.sha256(f"val{index}:{version}".encode()).digest()
    repeats = (value_size + len(seed) - 1) // len(seed)
    return (seed * repeats)[:value_size]


class KeyChooser:
    """Base class: picks record indices in ``[0, record_count)``."""

    def __init__(self, record_count: int, seed: int = 0):
        if record_count < 1:
            raise ConfigurationError("record_count must be positive")
        self.record_count = record_count
        self._rng = random.Random(seed)

    def next_index(self) -> int:
        """Draw the next record index."""
        raise NotImplementedError


class UniformChooser(KeyChooser):
    """Every record equally likely (the paper's configuration)."""

    def next_index(self) -> int:
        """Draw uniformly from the key space."""
        return self._rng.randrange(self.record_count)


class ZipfianChooser(KeyChooser):
    """YCSB's scrambled-zipfian: skewed popularity, theta ~ 0.99.

    Implementation follows Gray et al.'s rejection-free method as used in
    the YCSB source, with FNV scrambling so hot keys are spread across the
    key space.
    """

    def __init__(self, record_count: int, seed: int = 0, theta: float = 0.99):
        super().__init__(record_count, seed)
        if not 0 < theta < 1:
            raise ConfigurationError(f"theta must be in (0, 1): {theta}")
        self.theta = theta
        self._zetan = self._zeta(record_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / record_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        """Draw a popularity rank (0 = hottest), unscrambled."""
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(
                self.record_count
                * (self._eta * u - self._eta + 1) ** self._alpha
            )
            rank = min(rank, self.record_count - 1)
        return rank

    def next_index(self) -> int:
        """Draw a scrambled-zipfian record index."""
        # Scramble so popular ranks are spread over the key space.
        scrambled = (self.next_rank() * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return scrambled % self.record_count


class LatestChooser(KeyChooser):
    """YCSB's "latest" distribution: recently inserted records are hot.

    Implemented as a zipfian over recency rank -- rank 0 is the newest
    record.  Callers advance :attr:`newest` as the dataset grows (the
    operation stream does this automatically when it emits inserts).
    """

    def __init__(self, record_count: int, seed: int = 0, theta: float = 0.99):
        super().__init__(record_count, seed)
        self._zipf = ZipfianChooser(record_count, seed, theta)
        #: Index of the newest record; popularity decays behind it.
        self.newest = record_count - 1

    def next_index(self) -> int:
        """Draw an index skewed towards the newest record."""
        rank = self._zipf.next_rank()
        return (self.newest - rank) % self.record_count


def _make_chooser(spec: WorkloadSpec, seed: int) -> KeyChooser:
    if spec.distribution == "uniform":
        return UniformChooser(spec.record_count, seed)
    if spec.distribution == "latest":
        return LatestChooser(spec.record_count, seed)
    return ZipfianChooser(spec.record_count, seed)


class OperationStream:
    """Deterministic stream of (opcode, key, value) operations.

    The stream is a pure function of ``(spec, seed, client_id)``: two
    clients sharing a seed but holding different ids draw independent
    key/op sequences (see :func:`stream_seed`).
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0, client_id: int = 0):
        self.spec = spec
        effective = stream_seed(seed, client_id)
        self._chooser = _make_chooser(spec, effective)
        self._rng = random.Random(effective ^ 0x5BD1E995)
        self._versions = {}

    def load_phase(self) -> Iterator[Tuple[bytes, bytes]]:
        """The warm-up inserts: one (key, value) per record."""
        spec = self.spec
        for index in range(spec.record_count):
            yield (
                make_key(index, spec.key_size),
                make_value(index, spec.value_size),
            )

    def __iter__(self) -> Iterator[Tuple[OpCode, bytes, bytes]]:
        while True:
            yield self.next_operation()

    def next_operation(self) -> Tuple[OpCode, bytes, bytes]:
        """Draw one operation according to the mix."""
        spec = self.spec
        index = self._chooser.next_index()
        key = make_key(index, spec.key_size)
        if self._rng.random() < spec.read_fraction:
            return OpCode.GET, key, b""
        version = self._versions.get(index, 0) + 1
        self._versions[index] = version
        return (
            OpCode.PUT,
            key,
            make_value(index, spec.value_size, version),
        )
