"""Precursor reproduction: a client-centric trusted key-value store.

This package reproduces *Precursor: A Fast, Client-Centric and Trusted
Key-Value Store using RDMA and Intel SGX* (Messadi et al., Middleware '21)
as a pure-Python library.  It contains:

- :mod:`repro.core` -- the Precursor key-value store (client, server,
  protocol) with real client-side payload encryption under one-time keys.
- :mod:`repro.crypto` -- pure-Python Salsa20, AES-128, AES-GCM and AES-CMAC
  plus a cycle-accurate cost model used by the simulator.
- :mod:`repro.sgx` -- a software model of Intel SGX enclaves: trusted-heap
  accounting, ecall/ocall gates, EPC paging, remote attestation and an
  sgx-perf-style working-set tracer.
- :mod:`repro.rdma` -- an RDMA substrate: queue pairs, registered memory
  regions, one-sided verbs, completion queues and an RNIC model.
- :mod:`repro.net` -- a TCP transport model used by the ShieldStore baseline.
- :mod:`repro.baselines` -- the ShieldStore baseline (Merkle tree over MAC
  buckets, server-side encryption scheme).
- :mod:`repro.ycsb` -- YCSB workload generation.
- :mod:`repro.sim` -- the discrete-event simulation engine.
- :mod:`repro.bench` -- harnesses that regenerate every figure and table of
  the paper's evaluation.

Quickstart::

    from repro import make_pair

    server, client = make_pair()
    client.put(b"user:42", b"alice")
    assert client.get(b"user:42") == b"alice"
"""

from repro.core import (
    PrecursorClient,
    PrecursorServer,
    PrecursorServerEncryption,
    make_pair,
)
from repro.errors import (
    AuthenticationError,
    IntegrityError,
    KeyNotFoundError,
    PrecursorError,
    ReplayError,
)

__all__ = [
    "PrecursorClient",
    "PrecursorServer",
    "PrecursorServerEncryption",
    "make_pair",
    "PrecursorError",
    "IntegrityError",
    "AuthenticationError",
    "ReplayError",
    "KeyNotFoundError",
]

__version__ = "1.0.0"
