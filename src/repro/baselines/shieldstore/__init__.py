"""ShieldStore: shielded in-memory key-value storage with SGX.

A faithful functional reimplementation of the design the paper benchmarks
against (§5.1):

- encrypted key-value entries live in **untrusted** memory, organised as
  bucket chains; each entry carries a MAC;
- the enclave holds a statically allocated main structure and a Merkle
  tree over per-bucket MAC lists; the root is the integrity anchor;
- every GET decrypts bucket entries server-side to locate the key, then
  verifies the bucket's MAC list against the tree root; every PUT
  re-encrypts and updates the leaf-to-root path;
- clients talk to the server over kernel TCP sockets.

These are exactly the per-request costs -- server-side cryptography,
Merkle verification, TCP processing -- that Precursor's client-centric
design eliminates.
"""

from repro.baselines.shieldstore.client import ShieldStoreClient
from repro.baselines.shieldstore.server import (
    ShieldStoreConfig,
    ShieldStoreServer,
)

__all__ = ["ShieldStoreServer", "ShieldStoreClient", "ShieldStoreConfig"]
