"""The ShieldStore server.

Request path (paper §2.4/§5.1, describing Kim et al.'s design):

1. the sealed request arrives over TCP and is **copied entirely into the
   enclave**;
2. the enclave opens it with the session key (transport decryption);
3. GET: the server decrypts entries in the target bucket to find the key,
   reads the bucket's MAC list, recomputes the leaf hash and verifies it
   against the enclave-resident Merkle root -- per-request integrity work
   that grows with the chain length;
4. PUT: the entry is (re-)encrypted under the enclave's master key and
   written to untrusted memory; the bucket's leaf and the path to the root
   are rehashed;
5. the reply is sealed under the session key and sent back over TCP.

The enclave statically allocates its main structure up front, which is why
Table 1 reports a ~68 MiB working set before a single key is inserted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.baselines.shieldstore.buckets import BucketStore, EncryptedEntry
from repro.core.protocol import OpCode, Status
from repro.crypto.engine import resolve_engine
from repro.crypto.gcm import GcmFailure
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    IntegrityError,
    ProtocolError,
)
from repro.htable.robinhood import _fnv1a
from repro.merkle import MerkleTree
from repro.net.tcp import TcpEndpoint, TcpFabric
from repro.sgx.enclave import Enclave

__all__ = ["ShieldStoreServer", "ShieldStoreConfig", "ShieldStoreStats"]

_SERVER_IV_BIT = 0x8000_0000


@dataclass(frozen=True)
class ShieldStoreConfig:
    """ShieldStore sizing.

    The static trusted allocations reproduce Table 1's footprint: the full
    main structure plus a fixed count of in-enclave hashes is committed at
    start time (~17 392 pages), a MAC-hash cache appears with the first
    insert (+194 pages) and small counter blocks accrete every ~12 k
    inserts (+8 pages by 100 k keys).
    """

    num_buckets: int = 4096
    #: Enclave binary (ShieldStore's TCB is much larger than Precursor's).
    code_size_bytes: int = 512 * 1024
    stack_size_bytes: int = 16 * 1024
    #: Statically allocated main structure (bucket heads + in-enclave hashes).
    static_table_bytes: int = 64 * 1024 * 1024
    #: Statically allocated Merkle inner-node array.
    merkle_nodes_bytes: int = 3_588_096
    #: MAC-hash cache committed lazily on the first insert.
    mac_cache_bytes: int = 794_624
    #: One 4 KiB counter block per this many inserts (beyond the first).
    counter_block_interval: int = 12_288
    #: Disable real GCM for bulk accounting runs (Table 1); the functional
    #: protocol path always uses real crypto regardless.
    real_crypto: bool = True


@dataclass
class ShieldStoreStats:
    """Server-side counters; note the crypto/hash work Precursor avoids."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    auth_failures: int = 0
    integrity_failures: int = 0
    #: Bytes the *server* decrypted while scanning buckets.
    scan_decrypted_bytes: int = 0
    #: Bytes the server en/decrypted for storage (re-encryption scheme).
    storage_crypto_bytes: int = 0


class ShieldStoreServer:
    """A ShieldStore instance over the TCP fabric."""

    def __init__(
        self,
        fabric: TcpFabric = None,
        config: ShieldStoreConfig = None,
        keygen: KeyGenerator = None,
    ):
        self.fabric = fabric if fabric is not None else TcpFabric()
        self.config = config if config is not None else ShieldStoreConfig()
        self.stats = ShieldStoreStats()
        self.keygen = keygen if keygen is not None else KeyGenerator()

        cfg = self.config
        self.enclave = Enclave(
            name="shieldstore",
            code_size_bytes=cfg.code_size_bytes,
            stack_size_bytes=cfg.stack_size_bytes,
        )
        # Static allocation at start time (Table 1, "0 keys/init").
        self.enclave.allocator.allocate(cfg.static_table_bytes, "static_table")
        self.enclave.allocator.allocate(cfg.merkle_nodes_bytes, "merkle_nodes")

        # Trusted state.  The engine caches ciphers per key, so the master
        # cipher and every per-session cipher expand their key schedules
        # once instead of once per message.
        self._engine = resolve_engine(getattr(self.keygen, "engine", None))
        self._master = self._engine.gcm(self.keygen.session_key())
        self._tree = MerkleTree(cfg.num_buckets)
        self._sessions: Dict[int, SessionKey] = {}
        self._mac_cache_allocated = False
        self._counter_blocks = 0
        self._iv_counter = 0
        self._inserts = 0

        # Untrusted state.
        self.buckets = BucketStore(cfg.num_buckets)
        self._endpoints: Dict[int, TcpEndpoint] = {}

    # -- connection management ---------------------------------------------

    def connect_client(self, client_id: int, session_key: bytes) -> TcpEndpoint:
        """Admit a client; returns the client-side TCP endpoint."""
        if client_id in self._sessions:
            raise ConfigurationError(f"client {client_id} already connected")
        client_ep, server_ep = self.fabric.connect(
            f"ss-client-{client_id}", "shieldstore-server"
        )
        self._sessions[client_id] = SessionKey(
            key=session_key, client_id=client_id | _SERVER_IV_BIT
        )
        self._endpoints[client_id] = server_ep
        return client_ep

    # -- crypto helpers ----------------------------------------------------

    def _next_iv(self) -> bytes:
        self._iv_counter += 1
        return struct.pack(">IQ", 0x55AA55, self._iv_counter)

    def _seal_entry(self, key: bytes, value: bytes, iv: bytes) -> bytes:
        blob = struct.pack(">H", len(key)) + key + value
        if not self.config.real_crypto:
            # Accounting mode: structure and sizes only, no AES.
            return blob + b"\x00" * 16
        self.stats.storage_crypto_bytes += len(blob)
        return self._master.seal(iv, blob)

    def _open_entry(self, entry: EncryptedEntry) -> Tuple[bytes, bytes]:
        if not self.config.real_crypto:
            blob = entry.sealed[:-16]
        else:
            blob = self._master.open(entry.iv, entry.sealed)
        self.stats.scan_decrypted_bytes += len(entry.sealed)
        (key_len,) = struct.unpack(">H", blob[:2])
        return blob[2 : 2 + key_len], blob[2 + key_len :]

    # -- trusted memory accounting -----------------------------------------

    def _account_insert(self) -> None:
        self._inserts += 1
        if not self._mac_cache_allocated:
            self.enclave.allocator.allocate(
                self.config.mac_cache_bytes, "mac_cache"
            )
            self._mac_cache_allocated = True
        due = (self._inserts - 1) // self.config.counter_block_interval
        while self._counter_blocks < due:
            self.enclave.allocator.allocate(4096, "overflow_counters")
            self._counter_blocks += 1

    # -- core operations (trusted side) ------------------------------------

    def _scan_bucket(
        self, index: int, key: bytes
    ) -> Tuple[Optional[int], Optional[bytes]]:
        """Decrypt entries in a bucket to locate ``key``.

        Returns (position, value) or (None, None).  This decrypt-to-search
        is ShieldStore's structural cost: the server cannot compare
        encrypted keys directly.
        """
        key_hash = _fnv1a(key)
        for position, entry in enumerate(self.buckets.bucket(index)):
            if entry.key_hash != key_hash:
                continue
            try:
                entry_key, value = self._open_entry(entry)
            except GcmFailure as exc:
                self.stats.integrity_failures += 1
                raise IntegrityError(
                    f"entry in bucket {index} failed decryption: {exc}"
                ) from exc
            if entry_key == key:
                return position, value
        return None, None

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key`` (server-side encryption + tree update)."""
        if not key:
            raise ProtocolError("empty key")
        index = self.buckets.bucket_index(_fnv1a(key))
        position, _ = self._scan_bucket(index, key)
        iv = self._next_iv()
        entry = EncryptedEntry(
            key_hash=_fnv1a(key),
            iv=iv,
            sealed=self._seal_entry(key, value, iv),
        )
        if position is None:
            self.buckets.append(index, entry)
            self._account_insert()
        else:
            self.buckets.replace(index, position, entry)
        self._tree.update_leaf(index, self.buckets.mac_list(index))

    def get(self, key: bytes) -> Optional[bytes]:
        """Locate, integrity-verify and return the value, or None."""
        if not key:
            raise ProtocolError("empty key")
        index = self.buckets.bucket_index(_fnv1a(key))
        position, value = self._scan_bucket(index, key)
        if position is None:
            return None
        # Verify the bucket MAC list against the enclave-held root.
        self._tree.verify_leaf(index, self.buckets.mac_list(index))
        return value

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        if not key:
            raise ProtocolError("empty key")
        index = self.buckets.bucket_index(_fnv1a(key))
        position, _ = self._scan_bucket(index, key)
        if position is None:
            return False
        self.buckets.remove(index, position)
        self._tree.update_leaf(index, self.buckets.mac_list(index))
        return True

    # -- TCP request processing ------------------------------------------------

    def process_pending(self) -> int:
        """Serve every complete request currently queued on any socket."""
        handled = 0
        for client_id, endpoint in self._endpoints.items():
            while True:
                message = endpoint.recv()
                if message is None:
                    break
                self._handle_message(client_id, endpoint, message)
                handled += 1
        return handled

    def _handle_message(
        self, client_id: int, endpoint: TcpEndpoint, message: bytes
    ) -> None:
        session = self._sessions[client_id]
        if len(message) < 12:
            return
        iv, sealed = message[:12], message[12:]
        try:
            blob = self._engine.gcm(session.key).open(
                iv, sealed, aad=struct.pack(">I", client_id)
            )
        except GcmFailure:
            self.stats.auth_failures += 1
            return
        opcode = OpCode(blob[0])
        (key_len,) = struct.unpack(">H", blob[1:3])
        key = blob[3 : 3 + key_len]
        value = blob[3 + key_len :]

        status = Status.OK
        reply_value = b""
        try:
            if opcode is OpCode.PUT:
                self.stats.puts += 1
                self.put(key, value)
            elif opcode is OpCode.GET:
                self.stats.gets += 1
                found = self.get(key)
                if found is None:
                    self.stats.misses += 1
                    status = Status.NOT_FOUND
                else:
                    self.stats.hits += 1
                    reply_value = found
            elif opcode is OpCode.DELETE:
                self.stats.deletes += 1
                if self.delete(key):
                    self.stats.hits += 1
                else:
                    self.stats.misses += 1
                    status = Status.NOT_FOUND
        except IntegrityError:
            # Untrusted memory was tampered with: detected *server-side*
            # here (in Precursor the client detects it instead).
            status = Status.ERROR
            reply_value = b""

        reply = bytes([int(status)]) + reply_value
        reply_iv = session.next_iv()
        sealed_reply = self._engine.gcm(session.key).seal(
            reply_iv, reply, aad=b"resp" + struct.pack(">I", client_id)
        )
        endpoint.send(reply_iv + sealed_reply)

    # -- bulk loading ------------------------------------------------------------

    def warm_load(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Bulk-insert through the real storage path (no transport)."""
        count = 0
        for key, value in items:
            self.put(key, value)
            count += 1
        return count

    # -- introspection -----------------------------------------------------------

    @property
    def key_count(self) -> int:
        """Entries currently stored."""
        return self.buckets.entry_count

    @property
    def merkle_root(self) -> bytes:
        """The enclave-held integrity anchor."""
        return self._tree.root

    @property
    def hash_invocations(self) -> int:
        """Merkle hashes computed so far (per-request integrity cost)."""
        return self._tree.hash_count
