"""The ShieldStore client: a thin, trusting socket client.

Unlike a Precursor client, a ShieldStore client performs no payload
cryptography and no integrity verification -- it trusts the server enclave
to do both, and only shares a transport session key with it (established
via the same attestation flow).  The asymmetry is the point of the
comparison: here the server pays for all cryptographic work.
"""

from __future__ import annotations

import itertools
import struct
from typing import Callable, Optional

from repro.baselines.shieldstore.server import ShieldStoreServer
from repro.core.protocol import OpCode, Status
from repro.crypto.gcm import GcmFailure
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.errors import (
    AuthenticationError,
    KeyNotFoundError,
    PrecursorError,
    ProtocolError,
)

__all__ = ["ShieldStoreClient"]

_client_ids = itertools.count(1)


class ShieldStoreClient:
    """A connected ShieldStore client over the TCP fabric."""

    def __init__(
        self,
        server: ShieldStoreServer,
        client_id: Optional[int] = None,
        keygen: Optional[KeyGenerator] = None,
        auto_pump: bool = True,
    ):
        self.client_id = client_id if client_id is not None else next(_client_ids)
        self.keygen = keygen if keygen is not None else KeyGenerator()
        session_key = self.keygen.session_key()
        self.session = SessionKey(key=session_key, client_id=self.client_id)
        # One cached cipher per session instead of a fresh AesGcm (full
        # key schedule + GHASH setup) on every seal and every open.
        self._cipher = self.session.cipher(getattr(self.keygen, "engine", None))
        self._endpoint = server.connect_client(self.client_id, session_key)
        self._pump: Optional[Callable[[], int]] = (
            server.process_pending if auto_pump else None
        )
        self.operations = 0

    def _roundtrip(self, opcode: OpCode, key: bytes, value: bytes) -> bytes:
        if not key:
            raise ProtocolError("keys must be non-empty bytes")
        blob = bytes([int(opcode)]) + struct.pack(">H", len(key)) + key + value
        iv = self.session.next_iv()
        sealed = self._cipher.seal(
            iv, blob, aad=struct.pack(">I", self.client_id)
        )
        self._endpoint.send(iv + sealed)
        self.operations += 1
        if self._pump is not None:
            self._pump()
        reply = self._endpoint.recv()
        if reply is None:
            raise PrecursorError(
                "no reply available; pump the server when auto_pump is off"
            )
        reply_iv, reply_sealed = reply[:12], reply[12:]
        try:
            return self._cipher.open(
                reply_iv,
                reply_sealed,
                aad=b"resp" + struct.pack(">I", self.client_id),
            )
        except GcmFailure as exc:
            raise AuthenticationError(str(exc)) from exc

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key`` (server does all the crypto)."""
        reply = self._roundtrip(OpCode.PUT, key, value)
        if Status(reply[0]) is not Status.OK:
            raise PrecursorError(f"put failed: {Status(reply[0]).name}")

    def get(self, key: bytes) -> bytes:
        """Fetch the value for ``key``."""
        reply = self._roundtrip(OpCode.GET, key, b"")
        status = Status(reply[0])
        if status is Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if status is not Status.OK:
            raise PrecursorError(f"get failed: {status.name}")
        return reply[1:]

    def delete(self, key: bytes) -> None:
        """Remove ``key``."""
        reply = self._roundtrip(OpCode.DELETE, key, b"")
        status = Status(reply[0])
        if status is Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if status is not Status.OK:
            raise PrecursorError(f"delete failed: {status.name}")
