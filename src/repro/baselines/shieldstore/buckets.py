"""ShieldStore's untrusted bucket store.

Encrypted entries are chained per bucket in untrusted memory.  Each entry
holds the key's hash (for cheap scanning), the storage IV, and the sealed
``key || value`` blob whose trailing 16 bytes are the GCM tag -- the MAC
that the per-bucket MAC list (and through it the Merkle tree) protects.

The store counts how many bytes the server decrypts while scanning, which
is the measurable server-side cost Figure 5 attributes to ShieldStore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError

__all__ = ["EncryptedEntry", "BucketStore"]

_TAG_SIZE = 16


@dataclass
class EncryptedEntry:
    """One encrypted key-value record in untrusted memory."""

    key_hash: int
    iv: bytes
    sealed: bytes  # GCM(key || value) || tag

    @property
    def mac(self) -> bytes:
        """The entry's MAC: the GCM tag over its sealed blob."""
        return self.sealed[-_TAG_SIZE:]

    def size(self) -> int:
        """Untrusted bytes this entry occupies."""
        return len(self.iv) + len(self.sealed) + 8


class BucketStore:
    """Fixed-size array of entry chains in untrusted memory."""

    def __init__(self, num_buckets: int):
        if num_buckets < 1:
            raise ConfigurationError(
                f"need at least one bucket, got {num_buckets}"
            )
        self.num_buckets = num_buckets
        self._buckets: List[List[EncryptedEntry]] = [
            [] for _ in range(num_buckets)
        ]
        self.entry_count = 0

    def bucket_index(self, key_hash: int) -> int:
        """Map a key hash onto its bucket."""
        return key_hash % self.num_buckets

    def bucket(self, index: int) -> List[EncryptedEntry]:
        """The (mutable) chain of bucket ``index``."""
        self._check(index)
        return self._buckets[index]

    def mac_list(self, index: int) -> bytes:
        """Concatenated entry MACs of one bucket -- the Merkle leaf data."""
        self._check(index)
        return b"".join(entry.mac for entry in self._buckets[index])

    def append(self, index: int, entry: EncryptedEntry) -> None:
        """Chain a new entry into bucket ``index``."""
        self._check(index)
        self._buckets[index].append(entry)
        self.entry_count += 1

    def replace(self, index: int, position: int, entry: EncryptedEntry) -> None:
        """Overwrite the entry at ``position`` in bucket ``index``."""
        self._check(index)
        self._buckets[index][position] = entry

    def remove(self, index: int, position: int) -> EncryptedEntry:
        """Unchain and return the entry at ``position``."""
        self._check(index)
        entry = self._buckets[index].pop(position)
        self.entry_count -= 1
        return entry

    def chain_length(self, index: int) -> int:
        """Entries currently chained in bucket ``index``."""
        self._check(index)
        return len(self._buckets[index])

    def average_chain_length(self) -> float:
        """Mean entries per bucket (drives ShieldStore's scan cost)."""
        return self.entry_count / self.num_buckets

    def untrusted_bytes(self) -> int:
        """Total untrusted memory the entries occupy."""
        return sum(
            entry.size()
            for bucket in self._buckets
            for entry in bucket
        )

    def tamper(self, index: int, position: int, flip_at: int = 0) -> None:
        """Attack helper: flip one byte of a sealed entry in untrusted
        memory (what a rogue administrator could do)."""
        self._check(index)
        entry = self._buckets[index][position]
        blob = bytearray(entry.sealed)
        if not 0 <= flip_at < len(blob):
            raise ConfigurationError(f"flip offset {flip_at} out of range")
        blob[flip_at] ^= 0xFF
        entry.sealed = bytes(blob)

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_buckets:
            raise ConfigurationError(
                f"bucket {index} out of range [0, {self.num_buckets})"
            )
