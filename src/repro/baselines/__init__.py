"""Baseline systems the paper compares against.

- :mod:`repro.baselines.shieldstore` -- ShieldStore (Kim et al.,
  EuroSys '19), the state-of-the-art SGX-tailored key-value store used as
  the paper's primary baseline: encrypted entries in untrusted memory,
  per-bucket MAC lists under a Merkle tree rooted in the enclave,
  server-side encryption, socket (TCP) transport.

The second baseline, the Precursor *server-encryption* variant, shares
Precursor's transport stack and lives in
:mod:`repro.core.server_encryption`.
"""

from repro.baselines.shieldstore import ShieldStoreClient, ShieldStoreServer

__all__ = ["ShieldStoreServer", "ShieldStoreClient"]
