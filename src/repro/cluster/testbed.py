"""Machine and testbed descriptions consumed by the simulations.

Paper §5.1:

- Server: Intel Xeon E-2176G, 3.70 GHz, 6 cores / 12 hyper-threads,
  32 GB RAM, 40 Gbps Mellanox ConnectX-3 RoCE NIC.
- Clients: five machines with Intel Xeon E3-1230 (3.40 GHz, 4 cores /
  8 HT) and 10 Gbps ConnectX-3 NICs, plus one AMD EPYC 7281 (16 cores,
  128 GB) with a 40 Gbps NIC that runs half of the client processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.rdma.nic import RNic

__all__ = ["MachineSpec", "TestbedSpec", "paper_testbed", "sharded_testbed"]


@dataclass(frozen=True)
class MachineSpec:
    """One physical machine."""

    name: str
    ghz: float
    cores: int
    hyper_threads: int
    memory_gb: int
    nic: RNic

    def __post_init__(self) -> None:
        if self.ghz <= 0 or self.cores < 1 or self.hyper_threads < self.cores:
            raise ConfigurationError(f"invalid machine spec {self.name!r}")

    @property
    def effective_cores(self) -> float:
        """Usable core-equivalents: hyper-threads beyond the physical
        cores contribute ~30 % each (the usual SMT yield)."""
        extra = self.hyper_threads - self.cores
        return self.cores + 0.3 * extra

    def cycles_per_second(self) -> float:
        """Aggregate cycle budget across effective cores."""
        return self.effective_cores * self.ghz * 1e9


@dataclass(frozen=True)
class TestbedSpec:
    """One or more servers plus a set of client machines.

    The paper's testbed has a single server; scale-out experiments
    (:mod:`repro.shard`) replicate it.  ``server`` stays the first server
    so existing single-server callers are untouched; ``extra_servers``
    holds the replicas a sharded deployment adds.
    """

    server: MachineSpec
    clients: List[MachineSpec] = field(default_factory=list)
    extra_servers: List[MachineSpec] = field(default_factory=list)

    @property
    def servers(self) -> List[MachineSpec]:
        """Every server machine (the paper's one plus any replicas)."""
        return [self.server, *self.extra_servers]

    @property
    def server_count(self) -> int:
        """Number of server machines in the testbed."""
        return 1 + len(self.extra_servers)

    def client_slots(self) -> int:
        """Total client hyper-threads available."""
        return sum(machine.hyper_threads for machine in self.clients)

    def server_cycles_per_second(self) -> float:
        """Aggregate cycle budget across all server machines."""
        return sum(machine.cycles_per_second() for machine in self.servers)


def paper_testbed() -> TestbedSpec:
    """The exact testbed of §5.1."""
    server = MachineSpec(
        name="server",
        ghz=3.7,
        cores=6,
        hyper_threads=12,
        memory_gb=32,
        nic=RNic(bandwidth_gbps=40.0),
    )
    clients = [
        MachineSpec(
            name=f"client-{i}",
            ghz=3.4,
            cores=4,
            hyper_threads=8,
            memory_gb=32,
            nic=RNic(bandwidth_gbps=10.0),
        )
        for i in range(5)
    ]
    clients.append(
        MachineSpec(
            name="client-epyc",
            ghz=2.1,
            cores=16,
            hyper_threads=32,
            memory_gb=128,
            nic=RNic(bandwidth_gbps=40.0),
        )
    )
    return TestbedSpec(server=server, clients=clients)


def sharded_testbed(shards: int, replicas: int = 0) -> TestbedSpec:
    """The paper testbed scaled out to ``shards`` server machines.

    Each shard gets an identical copy of the §5.1 server (own CPU, RAM
    and 40 Gbps NIC); the client fleet is unchanged.  With ``replicas``
    set, every shard additionally brings that many identical backup
    machines (``repro.replica``): the HA bill is ``shards * (1 +
    replicas)`` servers.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if replicas < 0:
        raise ConfigurationError(f"replicas must be >= 0, got {replicas}")
    base = paper_testbed()

    def clone(name: str) -> MachineSpec:
        return MachineSpec(
            name=name,
            ghz=base.server.ghz,
            cores=base.server.cores,
            hyper_threads=base.server.hyper_threads,
            memory_gb=base.server.memory_gb,
            nic=RNic(bandwidth_gbps=base.server.nic.bandwidth_gbps),
        )

    extra = [clone(f"server-{i}") for i in range(1, shards)]
    extra.extend(
        clone(f"server-{i}b{j}")
        for i in range(shards)
        for j in range(replicas)
    )
    return TestbedSpec(
        server=base.server, clients=base.clients, extra_servers=extra
    )
