"""Testbed inventory: the machines of the paper's evaluation (§5.1)."""

from repro.cluster.testbed import (
    MachineSpec,
    TestbedSpec,
    paper_testbed,
    sharded_testbed,
)

__all__ = ["MachineSpec", "TestbedSpec", "paper_testbed", "sharded_testbed"]
