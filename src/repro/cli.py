"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4
    python -m repro.cli fig5 --quick
    python -m repro.cli all --quick --out bench_reports/

Each command prints the paper-style report (and optionally writes it to a
file); ``all`` runs every artifact in sequence.

Observability commands (see docs/OBSERVABILITY.md)::

    python -m repro.cli trace                # per-stage table for one get()
    python -m repro.cli trace --op put --json
    python -m repro.cli metrics              # Prometheus text exposition

Sharded-cluster command (see docs/SHARDING.md)::

    python -m repro.cli shard --shards 2 --workload b --ops 2000
    python -m repro.cli shard --shards 4 --workload a --json
    python -m repro.cli scaleout --quick     # simulated 1-8 shard curves

Crypto-benchmark command (see docs/PERFORMANCE.md)::

    python -m repro.cli cryptobench          # full run -> BENCH_crypto.json
    python -m repro.cli cryptobench --quick --floor 5   # CI smoke
    python -m repro.cli cryptobench --json

Batching benchmark (see docs/BATCHING.md)::

    python -m repro.cli batchbench           # full run -> BENCH_batching.json
    python -m repro.cli batchbench --quick --floor 1.05   # CI smoke
    python -m repro.cli batchbench --json

Fault-injection commands (see docs/FAULTS.md)::

    python -m repro.cli chaos --seed 7       # seeded chaos + verification
    python -m repro.cli chaos --seed 7 --schedule drop:0.1,enclave_crash:0.01
    python -m repro.cli chaos --shards 3 --schedule shard_death:0.02 --json
    python -m repro.cli faulttail --quick    # modelled retry-cost curves

Replication commands (see docs/REPLICATION.md)::

    python -m repro.cli replica --replicas 2             # failover chaos
    python -m repro.cli replica --ack-mode async --json  # detected losses
    python -m repro.cli replicate --quick                # modelled costs

Telemetry commands (see docs/OBSERVABILITY.md)::

    python -m repro.cli health                  # clean windowed SLO report
    python -m repro.cli health --slo 'latency:p99<500us'
    python -m repro.cli flightrec --out bench_reports  # breach -> JSON dump
    python -m repro.cli flightrec --load bench_reports/flightrec.json \\
        --trace c1-42                           # offline trace replay

Open-loop traffic commands (see docs/TRAFFIC.md)::

    python -m repro.cli traffic                          # steady scenario
    python -m repro.cli traffic --scenario flash-crowd --shards 2
    python -m repro.cli traffic --scenario multi-tenant-contention --json
    python -m repro.cli traffic --rate 3000 --slo 'latency:p99<10ms'
    python -m repro.cli loadknee --quick                 # knee smoke
    python -m repro.cli loadknee      # full run -> BENCH_traffic.json

Near-cache commands (see docs/CACHING.md)::

    python -m repro.cli nearcache --cache --offload      # cached scenario
    python -m repro.cli nearcache --cache --scenario hot-key-storm --json
    python -m repro.cli nearcachebench --quick           # cache smoke
    python -m repro.cli nearcachebench  # full run -> BENCH_nearcache.json

Autoscaler commands (see docs/AUTOSCALING.md)::

    python -m repro.cli autoscale                        # elastic flash crowd
    python -m repro.cli autoscale --max-shards 6 --json
    python -m repro.cli autoscale --policy 'scale-out:p99>1ms:for=2'
    python -m repro.cli chaos --shards 3 --replicas 1 --autoscale
    python -m repro.cli autoscalebench --quick           # elasticity smoke
    python -m repro.cli autoscalebench  # full run -> BENCH_autoscale.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict

from repro.bench import experiments

__all__ = ["main"]

def _run_scaleout_runner(quick: bool = False):
    from repro.bench.scaleout import run_scaleout

    return run_scaleout(quick=quick)


def _run_faulttail_runner(quick: bool = False):
    from repro.bench.faulttail import run_faulttail

    return run_faulttail(quick=quick)


def _run_replicate_runner(quick: bool = False):
    from repro.bench.replicate import run_replication

    return run_replication(quick=quick)


def _run_loadknee_runner(quick: bool = False):
    from repro.bench.loadknee import run_loadknee

    return run_loadknee(quick=quick)


def _run_nearcachebench_runner(quick: bool = False):
    from repro.bench.nearcache import run_nearcachebench

    return run_nearcachebench(quick=quick)


def _run_autoscalebench_runner(quick: bool = False):
    from repro.bench.autoscale import run_autoscalebench

    return run_autoscalebench(quick=quick)


_RUNNERS: Dict[str, Callable] = {
    "fig1": experiments.run_fig1,
    "fig4": experiments.run_fig4,
    "fig5": experiments.run_fig5,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "table1": experiments.run_table1,
    "scaleout": _run_scaleout_runner,
    "faulttail": _run_faulttail_runner,
    "replicate": _run_replicate_runner,
    "loadknee": _run_loadknee_runner,
    "nearcachebench": _run_nearcachebench_runner,
    "autoscalebench": _run_autoscalebench_runner,
}

_DESCRIPTIONS = {
    "fig1": "crypto decrypt+encrypt throughput vs 40 Gbit RDMA line rate",
    "fig4": "throughput vs read ratio (YCSB mixes, 32 B, 50 clients)",
    "fig5": "throughput vs value size, read-only + update-mostly",
    "fig6": "read-only throughput vs client count (10-100)",
    "fig7": "get() latency CDFs incl. the EPC-paging run",
    "fig8": "get() latency breakdown: networking vs server processing",
    "table1": "EPC working set at 0/1/100k inserted keys",
    "scaleout": "throughput/latency + EPC working set vs shard count (1-8)",
    "faulttail": "get() tail latency vs transport fault rate (retry cost)",
    "replicate": "failover latency + acked-write loss vs replication "
    "ack mode",
    "loadknee": "SLO-bounded throughput knee + corrected-vs-uncorrected "
    "tails per shard topology",
    "nearcachebench": "near-cache + backup-read-offload knee shift, "
    "primary-GET shed and state-equivalence gates",
    "autoscalebench": "elastic-vs-static knee grid, flash-crowd SLO "
    "recovery, shard-ms dividend + zero-flapping gates",
}


def _run_one(
    name: str,
    quick: bool,
    out_dir: pathlib.Path = None,
    csv: bool = False,
) -> "tuple":
    """Run one registered artifact; returns ``(text, exit_code)``.

    Artifacts whose results carry gates (``loadknee``,
    ``nearcachebench``, ``autoscalebench``) surface them through
    ``exit_code``; everything else exits 0.
    """
    runner = _RUNNERS[name]
    if name in ("fig1", "fig8"):
        result = runner()  # analytic, no quick knob
    else:
        result = runner(quick=quick)
    text = result.report()
    if name == "replicate":
        # Like cryptobench: the full run refreshes the committed
        # measurement file, the quick run stays out of its way.
        from repro.bench.replicate import write_json

        json_name = (
            "BENCH_replication_quick.json" if quick
            else "BENCH_replication.json"
        )
        if out_dir is not None:
            json_path = out_dir / json_name
        elif quick:
            json_path = pathlib.Path("bench_reports") / json_name
        else:
            json_path = pathlib.Path(json_name)
        write_json(result, json_path)
        text += f"\n[measurements saved to {json_path}]"
    if name == "loadknee":
        from repro.bench.loadknee import write_json

        json_name = (
            "BENCH_traffic_quick.json" if quick else "BENCH_traffic.json"
        )
        if out_dir is not None:
            json_path = out_dir / json_name
        elif quick:
            json_path = pathlib.Path("bench_reports") / json_name
        else:
            json_path = pathlib.Path(json_name)
        write_json(result, json_path)
        text += f"\n[measurements saved to {json_path}]"
    if name == "nearcachebench":
        from repro.bench.nearcache import write_json

        json_name = (
            "BENCH_nearcache_quick.json" if quick
            else "BENCH_nearcache.json"
        )
        if out_dir is not None:
            json_path = out_dir / json_name
        elif quick:
            json_path = pathlib.Path("bench_reports") / json_name
        else:
            json_path = pathlib.Path(json_name)
        write_json(result, json_path)
        text += f"\n[measurements saved to {json_path}]"
    if name == "autoscalebench":
        from repro.bench.autoscale import write_json

        json_name = (
            "BENCH_autoscale_quick.json" if quick
            else "BENCH_autoscale.json"
        )
        if out_dir is not None:
            json_path = out_dir / json_name
        elif quick:
            json_path = pathlib.Path("bench_reports") / json_name
        else:
            json_path = pathlib.Path(json_name)
        write_json(result, json_path)
        text += f"\n[measurements saved to {json_path}]"
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if csv:
            from repro.bench.export import to_csv

            (out_dir / f"{name}.csv").write_text(to_csv(result))
    return text, getattr(result, "exit_code", 0)


def _obs_workload(op: str, value_size: int, ops: int):
    """Run a small in-process workload; return (client, traced ops)."""
    from repro.core.client import PrecursorClient
    from repro.core.server import PrecursorServer
    from repro.rdma.fabric import Fabric

    server = PrecursorServer(fabric=Fabric())
    client = PrecursorClient(server)
    value = bytes(value_size)
    for i in range(ops):
        key = b"key-%04d" % i
        client.put(key, value)
        if op == "get":
            client.get(key)
        elif op == "delete":
            client.delete(key)
    return client


def run_trace(
    op: str = "get",
    value_size: int = 128,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> str:
    """One traced operation against an in-process server; render it."""
    from repro.obs.exporters import stage_latency_table, traces_to_json_lines

    client = _obs_workload(op, value_size, ops=1)
    traces = [t for t in client.obs.tracer.finished if t.op == op]
    if as_json:
        text = traces_to_json_lines(traces)
    else:
        text = stage_latency_table(
            traces, title=f"Per-stage latency: {op}({value_size} B value)"
        )
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "jsonl" if as_json else "txt"
        (out_dir / f"trace.{suffix}").write_text(text + "\n")
    return text


def run_metrics(
    op: str = "get",
    value_size: int = 128,
    ops: int = 32,
    out_dir: pathlib.Path = None,
) -> str:
    """Short in-process workload; dump the metrics registry."""
    from repro.obs.exporters import prometheus_text

    client = _obs_workload(op, value_size, ops=ops)
    text = prometheus_text(client.obs.registry)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "metrics.prom").write_text(text)
    return text.rstrip("\n")


def run_shard(
    shards: int = 2,
    workload: str = "b",
    ops: int = 1000,
    seed: int = 11,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> str:
    """Functional sharded run: real crypto, routing and live migration.

    Stands up ``shards`` servers behind a consistent-hash map, drives a
    YCSB mix through a :class:`~repro.shard.router.ShardedClient`, then
    joins one more shard live and re-reads a sample of keys through the
    (now stale) router to exercise the epoch-retry protocol.
    """
    import json
    from dataclasses import replace as dc_replace

    from repro.errors import ConfigurationError
    from repro.shard import ShardedCluster, ShardedClient
    from repro.ycsb.driver import WorkloadDriver
    from repro.ycsb.generator import make_key
    from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C

    specs = {"a": WORKLOAD_A, "b": WORKLOAD_B, "c": WORKLOAD_C}
    if workload not in specs:
        raise ConfigurationError(
            f"unknown workload {workload!r} (expected one of: a, b, c)"
        )
    if not 1 <= shards <= 64:
        raise ConfigurationError(
            f"--shards must be in [1, 64], got {shards}"
        )
    if ops < 1:
        raise ConfigurationError(f"--ops must be positive, got {ops}")

    # Pure-Python crypto runs at a few hundred ops/s; keep the resident
    # set proportional to the request count so the command stays snappy.
    records = max(64, min(512, ops // 4))
    spec = dc_replace(specs[workload], record_count=records)

    cluster = ShardedCluster(shards=shards, seed=seed)
    client = ShardedClient(cluster, trace_ops=False)
    driver = WorkloadDriver(client, spec, seed=seed)
    driver.load()
    run = driver.run(ops)

    before_epoch = cluster.epoch
    report = cluster.add_shard()
    sample = [make_key(i, spec.key_size) for i in range(min(32, records))]
    for key in sample:
        client.get(key)

    payload = {
        "shards": shards,
        "workload": workload,
        "operations": run.operations,
        "reads": run.reads,
        "updates": run.updates,
        "misses": run.misses,
        "ops_per_second": round(run.ops_per_second, 1),
        "p50_us": round(run.latency.percentile(50) / 1000.0, 1),
        "p99_us": round(run.latency.percentile(99) / 1000.0, 1),
        "key_counts": cluster.key_counts(),
        "epoch_before_join": before_epoch,
        "epoch_after_join": cluster.epoch,
        "migrated_entries": report.total_moved,
        "migrated_payload_bytes": report.payload_bytes,
        "stale_retries": client.stale_retries,
        "integrity_failures": client.integrity_failures,
    }
    if as_json:
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        counts = ", ".join(
            f"{name}={count}" for name, count in payload["key_counts"].items()
        )
        lines = [
            f"Sharded functional run: YCSB {workload.upper()}, "
            f"{shards} shard(s), {ops} ops, {records} records",
            "-" * 64,
            f"throughput      {payload['ops_per_second']:>10} ops/s "
            "(pure-Python crypto; see 'scaleout' for modelled numbers)",
            f"latency p50     {payload['p50_us']:>10} us",
            f"latency p99     {payload['p99_us']:>10} us",
            f"reads/updates   {run.reads}/{run.updates} "
            f"({run.misses} misses)",
            "-" * 64,
            f"live join       shard-{shards} joined: "
            f"{report.total_moved} entries migrated sealed "
            f"({report.payload_bytes} payload bytes), "
            f"epoch {before_epoch} -> {cluster.epoch}",
            f"stale retries   {payload['stale_retries']} "
            f"(router re-routed after the epoch bump)",
            f"integrity       {payload['integrity_failures']} MAC failures",
            f"key placement   {counts}",
        ]
        text = "\n".join(lines)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"shard.{suffix}").write_text(text + "\n")
    return text


def run_chaos_cmd(
    seed: int = 11,
    schedule: str = "drop:0.05,duplicate:0.05,delay:0.05,qp_error:0.02",
    ops: int = 200,
    shards: int = None,
    replicas: int = 0,
    ack_mode: str = "sync",
    as_json: bool = False,
    out_dir: pathlib.Path = None,
    out_name: str = "chaos",
    autoscale: bool = False,
    autoscale_policy: str = None,
) -> "tuple":
    """Seeded chaos run; returns ``(text, exit_code)``.

    Exit code 0 means every fault was recovered and the final store state
    matched the shadow model; 1 means an integrity violation survived
    (lost acked write, silent corruption, resurrection).  Under a
    ``sync``/``semi-sync`` replicated cluster any acked loss at a
    promotion is itself a contract violation, so client-detected losses
    and group-reported lost records also flip the exit code.  With
    ``autoscale`` the elastic controller runs live during the schedule
    (``docs/AUTOSCALING.md``) and any flapping also forces exit 1.
    """
    import json

    from repro.faults import run_chaos

    report = run_chaos(
        seed=seed,
        schedule=schedule,
        ops=ops,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        autoscale=autoscale,
        autoscale_policy=autoscale_policy,
    )
    contract_broken = (
        replicas > 0
        and ack_mode in ("sync", "semi-sync")
        and (report.losses_detected > 0 or report.lost_records > 0)
    )
    if as_json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        counts = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report.fault_counts.items())
        ) or "none"
        outcome_line = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.outcomes.items())
        )
        if report.shards and replicas:
            mode = (
                f"{report.shards} shards x {replicas + 1} replicas, "
                f"{ack_mode}"
            )
        elif report.shards:
            mode = f"{report.shards} shards"
        else:
            mode = "single server"
        if contract_broken:
            verdict = (
                f"VIOLATIONS: {ack_mode} group lost acked writes "
                f"(lost_records={report.lost_records}, "
                f"detected={report.losses_detected})"
            )
        elif report.ok:
            verdict = "OK: store matches shadow model"
        else:
            verdict = f"VIOLATIONS: {report.violations}"
        lines = [
            f"Chaos run: seed={report.seed} schedule='{report.schedule}' "
            f"({report.ops} ops, {mode})",
            "-" * 68,
            f"faults injected   {sum(report.fault_counts.values())} "
            f"({counts})",
            f"outcomes          {outcome_line}",
            f"recoveries        retries={report.retries} "
            f"reconnects={report.reconnects} "
            f"failovers={report.failovers} "
            f"crash_restarts={report.crash_restarts} "
            f"promotions={report.promotions}",
            f"tamper detected   {report.tamper_detected}",
            f"losses            acked records lost={report.lost_records}, "
            f"client-detected={report.losses_detected}",
            f"fault fingerprint {report.fault_fingerprint[:16]}...",
            f"state digest      {report.state_digest[:16]}...",
        ]
        if report.autoscale:
            lines.append(
                f"autoscale         decisions={report.autoscale_decisions} "
                f"applied={report.autoscale_applied} "
                f"flapping={report.autoscale_flapping}"
            )
        lines.append(f"verdict           {verdict}")
        text = "\n".join(lines)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"{out_name}.{suffix}").write_text(text + "\n")
        if report.flight_dump is not None:
            (out_dir / f"{out_name}_flight.json").write_text(
                json.dumps(report.flight_dump, indent=2, sort_keys=True)
                + "\n"
            )
    code = report.exit_code
    if contract_broken and code == 0:
        code = 1
    if report.autoscale and report.autoscale_flapping and code == 0:
        code = 1
    return text, code


def run_replica_cmd(
    seed: int = 11,
    schedule: str = "shard_death:0.05,replica_lag:0.08",
    ops: int = 200,
    shards: int = 3,
    replicas: int = 1,
    ack_mode: str = "sync",
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Replicated failover chaos run; returns ``(text, exit_code)``.

    A thin front-end over the chaos harness with replication-shaped
    defaults: a 3-shard cluster where every shard is a primary-backup
    group, under a schedule that kills primaries and widens replication
    lag.  Exit code 0 means the selected ack mode's contract held
    (sync/semi-sync: zero acked loss; async: every loss detected by the
    client, none silent); 1 means it did not; 2 means the configuration
    was invalid.
    """
    from repro.errors import ConfigurationError
    from repro.replica import ACK_MODES

    if replicas < 1:
        raise ConfigurationError(
            f"'replica' needs --replicas >= 1, got {replicas}"
        )
    if ack_mode not in ACK_MODES:
        raise ConfigurationError(
            f"unknown ack mode {ack_mode!r}; known: {', '.join(ACK_MODES)}"
        )
    return run_chaos_cmd(
        seed=seed,
        schedule=schedule,
        ops=ops,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        as_json=as_json,
        out_dir=out_dir,
        out_name="replica",
    )


def run_health_cmd(
    seed: int = 11,
    shards: int = 2,
    replicas: int = 1,
    ack_mode: str = "sync",
    ops: int = 240,
    tick_every: int = 40,
    window: int = 3,
    hot_shard: str = None,
    schedule: str = "",
    slo: str = None,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Deterministic cluster health run; returns ``(text, exit_code)``.

    Drives a seeded sharded workload with modelled service latency,
    publishes windowed per-shard telemetry on a fixed cadence, and
    evaluates the declarative SLO rules against every snapshot.  Exit
    code 0 means every objective held over the whole run; 1 means at
    least one rule breached (the report names the offending shard with
    its windowed percentile evidence).
    """
    import json

    from repro.faults import run_health

    report = run_health(
        seed=seed,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        ops=ops,
        tick_every=tick_every,
        window_ticks=window,
        hot_shard=hot_shard,
        schedule=schedule,
        slo=slo,
    )
    if as_json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.report()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"health.{suffix}").write_text(text + "\n")
    return text, report.exit_code


def run_flightrec_cmd(
    seed: int = 11,
    shards: int = 2,
    replicas: int = 1,
    ops: int = 240,
    tick_every: int = 40,
    window: int = 3,
    hot_shard: str = "auto",
    schedule: str = "drop:0.08",
    slo: str = None,
    load: pathlib.Path = None,
    trace_id: str = None,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Flight-recorder demo / offline reader; returns ``(text, exit_code)``.

    Without ``--load``, runs the breach scenario (hot shard plus a wire
    fault schedule), freezes the flight recorder on the first SLO
    breach, and prints -- and with ``--out`` writes -- the JSON dump.
    Exit code 0 means a valid dump was produced; 1 means the scenario
    unexpectedly stayed clean.

    With ``--load PATH``, reads a previously written dump instead:
    validates it, prints its summary, and with ``--trace ID``
    reconstructs that request's causal hop timeline from the frozen
    contexts.  Exit code 0 on a valid dump, 2 on unreadable/invalid
    input or an unknown trace id.
    """
    import json

    from repro.faults import run_health
    from repro.obs import FlightRecorder

    if load is not None:
        dump = FlightRecorder.load(str(load))
        FlightRecorder.validate(dump)
        if trace_id is not None:
            return FlightRecorder.render_trace(dump, trace_id), 0
        trigger = dump["trigger"]
        traces = [c.get("trace_id") for c in dump["contexts"]]
        lines = [
            f"flight dump {load}",
            f"  trigger   {trigger['reason']} (t={trigger.get('t_ns')}ns)",
            f"  contexts  {len(dump['contexts'])} "
            f"(--trace ID to replay one)",
            f"  faults    {len(dump['faults'])}",
            f"  events    {len(dump['events'])}",
            f"  trace ids {', '.join(t for t in traces[-8:] if t)}",
        ]
        return "\n".join(lines), 0

    report = run_health(
        seed=seed,
        shards=shards,
        replicas=replicas,
        ops=ops,
        tick_every=tick_every,
        window_ticks=window,
        hot_shard=hot_shard,
        schedule=schedule,
        slo=slo,
    )
    if report.dump is None:
        return (
            "flightrec: scenario stayed within SLO; no dump produced "
            "(lower the objective with --slo or raise --ops)",
            1,
        )
    FlightRecorder.validate(report.dump)
    text = json.dumps(report.dump, indent=2, sort_keys=True)
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "flightrec.json").write_text(text + "\n")
        text += f"\n[flight dump saved to {out_dir / 'flightrec.json'}]"
    return text, 0


def run_cryptobench_cmd(
    quick: bool = False,
    floor: float = 5.0,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Wall-clock crypto benchmark; returns ``(text, exit_code)``.

    Measurements land in ``BENCH_crypto.json`` (full run, repo root) or
    ``bench_reports/BENCH_crypto_quick.json`` (quick run) -- the quick
    path is separate so CI smoke runs never clobber the committed full
    trajectory.  ``--out DIR`` redirects either file into ``DIR``.
    Exit code 0 when cross-engine parity held and every speedup floor
    was met; 1 otherwise.
    """
    import json

    from repro.bench.cryptobench import run_cryptobench, write_json
    from repro.errors import ConfigurationError

    if floor < 0:
        raise ConfigurationError(
            f"--floor must be non-negative, got {floor}"
        )
    result = run_cryptobench(quick=quick, floor=floor)
    name = "BENCH_crypto_quick.json" if quick else "BENCH_crypto.json"
    if out_dir is not None:
        path = out_dir / name
    elif quick:
        path = pathlib.Path("bench_reports") / name
    else:
        path = pathlib.Path(name)
    write_json(result, path)
    if as_json:
        text = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    else:
        text = result.report() + f"\n[measurements saved to {path}]"
    return text, result.exit_code


def run_batchbench_cmd(
    quick: bool = False,
    floor: float = 1.3,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Batched-pipeline benchmark; returns ``(text, exit_code)``.

    Measurements land in ``BENCH_batching.json`` (full run, repo root)
    or ``bench_reports/BENCH_batching_quick.json`` (quick run) -- same
    split as cryptobench, so CI smoke runs never clobber the committed
    full trajectory.  Exit code 0 when the K=0/K=1/K=16
    behavioural-identity gate held and the K=16 speedup floor was met;
    1 otherwise.
    """
    import json

    from repro.bench.batching import run_batchbench, write_json
    from repro.errors import ConfigurationError

    if floor < 0:
        raise ConfigurationError(
            f"--floor must be non-negative, got {floor}"
        )
    result = run_batchbench(quick=quick, floor=floor)
    name = "BENCH_batching_quick.json" if quick else "BENCH_batching.json"
    if out_dir is not None:
        path = out_dir / name
    elif quick:
        path = pathlib.Path("bench_reports") / name
    else:
        path = pathlib.Path(name)
    write_json(result, path)
    if as_json:
        text = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    else:
        text = result.report() + f"\n[measurements saved to {path}]"
    return text, result.exit_code


def run_traffic_cmd(
    scenario: str = "steady",
    seed: int = 11,
    shards: int = 2,
    replicas: int = 0,
    ack_mode: str = "sync",
    rate: float = None,
    ops: int = None,
    schedule: str = "",
    slo: str = None,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Open-loop scenario run; returns ``(text, exit_code)``.

    Runs one named scenario from the registry
    (:mod:`repro.traffic.scenarios`) and prints corrected vs.
    uncorrected latency side by side.  Exit code 0 means the run-level
    SLO held and the correction invariant (corrected p99 >= uncorrected
    p99) was intact; 1 means a breach or a broken invariant; 2 means
    the configuration was invalid (unknown scenario, bad SLO spec, bad
    fault schedule).
    """
    import json

    from repro.traffic import run_scenario

    report = run_scenario(
        scenario,
        seed=seed,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        rate=rate,
        ops=ops,
        schedule=schedule,
        slo=slo,
    )
    if as_json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.report()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"traffic.{suffix}").write_text(text + "\n")
    return text, report.exit_code


def run_nearcache_cmd(
    scenario: str = "hot-key-storm",
    seed: int = 11,
    shards: int = 2,
    replicas: int = 1,
    ack_mode: str = "sync",
    rate: float = None,
    ops: int = None,
    cache: bool = False,
    offload: bool = False,
    cache_entries: int = 256,
    cache_lease_ms: float = 25.0,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Open-loop scenario with the near-cache; returns ``(text, exit_code)``.

    A front-end over :func:`~repro.traffic.scenarios.run_scenario` that
    turns on the client-verified near-cache (``--cache``) and/or the
    freshness-token backup-read offload (``--offload``) on every pooled
    connection; the report grows a near-cache section (hits, misses,
    revalidations, offloaded reads, primary/backup GET split).  Exit
    code 0 means the run-level SLO held with the correction invariant
    intact; 1 means a breach; 2 means the configuration was invalid --
    including asking for neither feature (use 'traffic' for that) or
    for ``--offload`` without any backups to offload onto.
    """
    import json

    from repro.errors import ConfigurationError
    from repro.traffic import run_scenario

    if not cache and not offload:
        raise ConfigurationError(
            "'nearcache' needs --cache and/or --offload "
            "(plain runs: use the 'traffic' command)"
        )
    if offload and replicas < 1:
        raise ConfigurationError(
            f"--offload needs --replicas >= 1 to have backups to read "
            f"from, got {replicas}"
        )
    report = run_scenario(
        scenario,
        seed=seed,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        rate=rate,
        ops=ops,
        near_cache=cache,
        read_offload=offload,
        cache_entries=cache_entries,
        cache_lease_ms=cache_lease_ms,
    )
    if as_json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.report()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"nearcache.{suffix}").write_text(text + "\n")
    return text, report.exit_code


def run_autoscale_cmd(
    scenario: str = "flash-crowd",
    seed: int = 11,
    shards: int = 1,
    replicas: int = 1,
    ack_mode: str = "sync",
    rate: float = None,
    ops: int = None,
    policy: str = None,
    max_shards: int = 4,
    slo: str = None,
    as_json: bool = False,
    out_dir: pathlib.Path = None,
) -> "tuple":
    """Open-loop scenario with the autoscaler; returns ``(text, exit_code)``.

    A front-end over :func:`~repro.traffic.scenarios.run_scenario` that
    attaches the SLO-driven elastic control plane
    (:mod:`repro.autoscale`, ``docs/AUTOSCALING.md``) to the telemetry
    pipeline: the cluster starts at ``--shards`` and the controller
    splits/joins shards and grows/shrinks replica groups up to
    ``--max-shards`` under the declarative ``--policy``.  The report
    grows an autoscale section (every decision -- applied *and*
    refused -- plus the canonical decision log and its fingerprint).
    Exit code 0 means the run-level SLO held *and* the controller never
    flapped; 1 means an SLO breach, a broken correction invariant or
    observed flapping; 2 means the configuration was invalid (unknown
    scenario, malformed policy spec, bad bounds).
    """
    import json

    from repro.errors import ConfigurationError
    from repro.traffic import run_scenario

    if max_shards < shards:
        raise ConfigurationError(
            f"--max-shards ({max_shards}) must be >= --shards ({shards})"
        )
    report = run_scenario(
        scenario,
        seed=seed,
        shards=shards,
        replicas=replicas,
        ack_mode=ack_mode,
        rate=rate,
        ops=ops,
        slo=slo,
        autoscale=True,
        autoscale_policy=policy,
        autoscale_max_shards=max_shards,
    )
    if as_json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        text = report.report()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        suffix = "json" if as_json else "txt"
        (out_dir / f"autoscale.{suffix}").write_text(text + "\n")
    code = report.exit_code
    summary = report.autoscale_summary or {}
    if summary.get("flapping", 0) and code == 0:
        code = 1
    return text, code


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description=(
            "Regenerate the evaluation artifacts of 'Precursor' "
            "(Middleware '21)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_RUNNERS)
        + ["all", "list", "scorecard", "trace", "metrics", "shard",
           "chaos", "cryptobench", "batchbench", "replica", "health",
           "flightrec", "traffic", "nearcache", "autoscale"],
        help="which figure/table to regenerate ('all' for everything, "
        "'list' to enumerate, 'scorecard' for pass/fail vs the paper, "
        "'trace'/'metrics' to exercise the observability subsystem, "
        "'shard' for a functional sharded-cluster run, 'chaos' for a "
        "seeded fault-injection run with shadow verification, "
        "'cryptobench' for the wall-clock reference-vs-fast crypto "
        "benchmark, 'batchbench' for the serial-vs-batched request "
        "pipeline benchmark, 'replica' for a replicated failover chaos "
        "run, "
        "'health' for a windowed SLO report over a deterministic "
        "cluster run, 'flightrec' to produce or replay a "
        "flight-recorder dump, 'traffic' for an open-loop scenario "
        "with coordinated-omission-corrected tails, 'nearcache' for the "
        "same with the client-verified near-cache and/or backup-read "
        "offload enabled, 'autoscale' for the same with the SLO-driven "
        "elastic control plane live)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shortened simulations (smoke-test quality)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also write each report to DIR/<artifact>.txt",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="with --out: additionally write DIR/<artifact>.csv "
        "(plot-ready data)",
    )
    obs = parser.add_argument_group("observability (trace/metrics only)")
    obs.add_argument(
        "--op",
        choices=["get", "put", "delete"],
        default="get",
        help="operation to trace (default: get)",
    )
    obs.add_argument(
        "--value-size",
        type=int,
        default=128,
        metavar="BYTES",
        help="payload size for the traced operation (default: 128)",
    )
    obs.add_argument(
        "--ops",
        type=int,
        default=None,
        metavar="N",
        help="workload size for the 'metrics' (default: 32) and 'shard' "
        "(default: 1000) commands",
    )
    obs.add_argument(
        "--json",
        action="store_true",
        help="with 'trace'/'shard': emit JSON instead of the text report",
    )
    shard = parser.add_argument_group("sharding ('shard'/'chaos')")
    shard.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count for the functional cluster ('shard' default: 2; "
        "'chaos' default: single unsharded server)",
    )
    shard.add_argument(
        "--workload",
        choices=["a", "b", "c"],
        default="b",
        help="YCSB mix to drive through the router (default: b)",
    )
    shard.add_argument(
        "--seed",
        type=int,
        default=11,
        metavar="S",
        help="deterministic seed for ring placement + workload "
        "(default: 11)",
    )
    bench = parser.add_argument_group(
        "benchmarks ('cryptobench'/'batchbench')"
    )
    bench.add_argument(
        "--floor",
        type=float,
        default=None,
        metavar="X",
        help="minimum accepted speedup: fast/reference on the 4 KiB "
        "crypto checkpoints for 'cryptobench' (default: 5.0), K=16 over "
        "K=1 for 'batchbench' (default: 1.3); exit code 1 below it",
    )
    chaos = parser.add_argument_group("fault injection ('chaos'/'replica')")
    chaos.add_argument(
        "--schedule",
        default=None,
        metavar="SPEC",
        help="comma-separated 'kind:rate' fault schedule (kinds: drop, "
        "duplicate, delay, corrupt_payload, corrupt_control, qp_error, "
        "enclave_crash, shard_death, replica_lag, "
        "promote_during_migration); defaults: transport mix for 'chaos', "
        "'shard_death:0.05,replica_lag:0.08' for 'replica'",
    )
    chaos.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="R",
        help="backups per shard ('replica' default: 1; 'chaos' default: "
        "0, unreplicated)",
    )
    chaos.add_argument(
        "--ack-mode",
        choices=["sync", "semi-sync", "async"],
        default="sync",
        help="replication acknowledgement contract (default: sync)",
    )
    health = parser.add_argument_group("telemetry ('health'/'flightrec')")
    health.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help="comma-separated SLO rules, e.g. "
        "'latency:p99<1ms:min=8,errors:budget=2%%:burn<5,"
        "staleness:lag<32' (default: the built-in spec)",
    )
    health.add_argument(
        "--hot-shard",
        default=None,
        metavar="NAME",
        help="inject a modelled latency fault into NAME's replica group "
        "('auto' picks the first shard; 'health' default: none, "
        "'flightrec' default: auto)",
    )
    health.add_argument(
        "--tick-every",
        type=int,
        default=40,
        metavar="N",
        help="publish a telemetry snapshot every N operations "
        "(default: 40)",
    )
    health.add_argument(
        "--window",
        type=int,
        default=3,
        metavar="T",
        help="sliding-window width in ticks for the per-shard "
        "aggregates (default: 3)",
    )
    health.add_argument(
        "--load",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="with 'flightrec': read an existing dump instead of "
        "running the breach scenario",
    )
    health.add_argument(
        "--trace",
        default=None,
        metavar="ID",
        help="with 'flightrec --load': reconstruct this trace's causal "
        "hop timeline from the dump",
    )
    traffic = parser.add_argument_group(
        "open-loop traffic ('traffic'/'nearcache')"
    )
    traffic.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="registered scenario name (steady, bursty, diurnal, "
        "flash-crowd, hot-key-storm, multi-tenant-contention; "
        "'traffic' default: steady, 'nearcache' default: hot-key-storm)",
    )
    traffic.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="OPS_S",
        help="offered arrival rate override in ops/s of simulated time "
        "(default: the scenario's own rate)",
    )
    cache = parser.add_argument_group("near-cache ('nearcache' only)")
    cache.add_argument(
        "--cache",
        action="store_true",
        help="enable the client-verified near-cache on every pooled "
        "connection",
    )
    cache.add_argument(
        "--offload",
        action="store_true",
        help="enable freshness-token GET offload to replica backups "
        "(needs --replicas >= 1)",
    )
    cache.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        metavar="N",
        help="per-connection near-cache capacity (default: 256)",
    )
    cache.add_argument(
        "--lease-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="near-cache lease length in simulated milliseconds "
        "(default: 25)",
    )
    scaler = parser.add_argument_group("autoscaler ('autoscale'/'chaos')")
    scaler.add_argument(
        "--autoscale",
        action="store_true",
        help="'chaos' only: run the elastic controller live during the "
        "fault schedule (requires --shards; exit 1 on any flapping)",
    )
    scaler.add_argument(
        "--policy",
        default=None,
        metavar="SPEC",
        help="comma-separated policy rules, e.g. "
        "'scale-out:p99>2ms:for=2,scale-in:util<25%%:for=8' "
        "(default: the built-in policy)",
    )
    scaler.add_argument(
        "--max-shards",
        type=int,
        default=4,
        metavar="N",
        help="upper bound the stability guard enforces on shard count "
        "(default: 4)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(_RUNNERS):
            print(f"{name:8s} {_DESCRIPTIONS[name]}")
        print("scorecard  pass/fail verdict on every paper claim")
        print("trace      per-stage span breakdown of one live operation")
        print("metrics    Prometheus-style dump of the metrics registry")
        print("shard      functional sharded run: routing, live join, "
              "epoch retry")
        print("chaos      seeded fault-injection run with shadow-model "
              "verification")
        print("cryptobench  wall-clock reference-vs-fast crypto engine "
              "benchmark")
        print("batchbench  serial-vs-batched request pipeline benchmark "
              "(K-frame drain)")
        print("replica    replicated failover chaos run (promotion + "
              "client loss detection)")
        print("health     windowed SLO report over a deterministic "
              "cluster run")
        print("flightrec  breach-triggered flight-recorder dump "
              "(or --load to replay one)")
        print("traffic    open-loop scenario run with "
              "coordinated-omission-corrected tails")
        print("nearcache  open-loop scenario with the client-verified "
              "near-cache / backup-read offload")
        print("autoscale  open-loop scenario with the SLO-driven "
              "elastic control plane live")
        return 0
    if args.artifact in ("trace", "metrics") and args.value_size < 0:
        print(
            f"error: --value-size must be non-negative, got {args.value_size}",
            file=sys.stderr,
        )
        return 2
    if args.artifact == "trace":
        print(
            run_trace(
                op=args.op,
                value_size=args.value_size,
                as_json=args.json,
                out_dir=args.out,
            )
        )
        return 0
    if args.artifact == "metrics":
        print(
            run_metrics(
                op=args.op,
                value_size=args.value_size,
                ops=args.ops if args.ops is not None else 32,
                out_dir=args.out,
            )
        )
        return 0
    if args.artifact == "shard":
        from repro.errors import ConfigurationError

        try:
            text = run_shard(
                shards=args.shards if args.shards is not None else 2,
                workload=args.workload,
                ops=args.ops if args.ops is not None else 1000,
                seed=args.seed,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return 0
    if args.artifact == "chaos":
        from repro.errors import ConfigurationError

        try:
            text, code = run_chaos_cmd(
                seed=args.seed,
                schedule=args.schedule
                if args.schedule is not None
                else "drop:0.05,duplicate:0.05,delay:0.05,qp_error:0.02",
                ops=args.ops if args.ops is not None else 200,
                shards=args.shards,
                replicas=args.replicas if args.replicas is not None else 0,
                ack_mode=args.ack_mode,
                as_json=args.json,
                out_dir=args.out,
                autoscale=args.autoscale,
                autoscale_policy=args.policy,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "replica":
        from repro.errors import ConfigurationError

        try:
            text, code = run_replica_cmd(
                seed=args.seed,
                schedule=args.schedule
                if args.schedule is not None
                else "shard_death:0.05,replica_lag:0.08",
                ops=args.ops if args.ops is not None else 200,
                shards=args.shards if args.shards is not None else 3,
                replicas=args.replicas if args.replicas is not None else 1,
                ack_mode=args.ack_mode,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "health":
        from repro.errors import ConfigurationError

        try:
            text, code = run_health_cmd(
                seed=args.seed,
                shards=args.shards if args.shards is not None else 2,
                replicas=args.replicas if args.replicas is not None else 1,
                ack_mode=args.ack_mode,
                ops=args.ops if args.ops is not None else 240,
                tick_every=args.tick_every,
                window=args.window,
                hot_shard=args.hot_shard,
                schedule=args.schedule if args.schedule is not None else "",
                slo=args.slo,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "flightrec":
        from repro.errors import ConfigurationError, ObservabilityError

        try:
            text, code = run_flightrec_cmd(
                seed=args.seed,
                shards=args.shards if args.shards is not None else 2,
                replicas=args.replicas if args.replicas is not None else 1,
                ops=args.ops if args.ops is not None else 240,
                tick_every=args.tick_every,
                window=args.window,
                hot_shard=args.hot_shard
                if args.hot_shard is not None
                else "auto",
                schedule=args.schedule
                if args.schedule is not None
                else "drop:0.08",
                slo=args.slo,
                load=args.load,
                trace_id=args.trace,
                as_json=args.json,
                out_dir=args.out,
            )
        except (ConfigurationError, ObservabilityError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "traffic":
        from repro.errors import ConfigurationError

        try:
            text, code = run_traffic_cmd(
                scenario=args.scenario
                if args.scenario is not None
                else "steady",
                seed=args.seed,
                shards=args.shards if args.shards is not None else 2,
                replicas=args.replicas if args.replicas is not None else 0,
                ack_mode=args.ack_mode,
                rate=args.rate,
                ops=args.ops,
                schedule=args.schedule if args.schedule is not None else "",
                slo=args.slo,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "nearcache":
        from repro.errors import ConfigurationError

        try:
            text, code = run_nearcache_cmd(
                scenario=args.scenario
                if args.scenario is not None
                else "hot-key-storm",
                seed=args.seed,
                shards=args.shards if args.shards is not None else 2,
                replicas=args.replicas if args.replicas is not None else 1,
                ack_mode=args.ack_mode,
                rate=args.rate,
                ops=args.ops,
                cache=args.cache,
                offload=args.offload,
                cache_entries=args.cache_entries,
                cache_lease_ms=args.lease_ms,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "autoscale":
        from repro.errors import ConfigurationError

        try:
            text, code = run_autoscale_cmd(
                scenario=args.scenario
                if args.scenario is not None
                else "flash-crowd",
                seed=args.seed,
                shards=args.shards if args.shards is not None else 1,
                replicas=args.replicas if args.replicas is not None else 1,
                ack_mode=args.ack_mode,
                rate=args.rate,
                ops=args.ops,
                policy=args.policy,
                max_shards=args.max_shards,
                slo=args.slo,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "cryptobench":
        from repro.errors import ConfigurationError

        try:
            text, code = run_cryptobench_cmd(
                quick=args.quick,
                floor=args.floor if args.floor is not None else 5.0,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "batchbench":
        from repro.errors import ConfigurationError

        try:
            text, code = run_batchbench_cmd(
                quick=args.quick,
                floor=args.floor if args.floor is not None else 1.3,
                as_json=args.json,
                out_dir=args.out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return code
    if args.artifact == "scorecard":
        from repro.bench.scorecard import run_scorecard

        result = run_scorecard(quick=args.quick)
        print(result.report())
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / "scorecard.txt").write_text(result.report() + "\n")
        return 0 if result.passed == result.total else 1
    names = sorted(_RUNNERS) if args.artifact == "all" else [args.artifact]
    worst = 0
    for name in names:
        text, code = _run_one(
            name, quick=args.quick, out_dir=args.out, csv=args.csv
        )
        print(text)
        print()
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    sys.exit(main())
