"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4
    python -m repro.cli fig5 --quick
    python -m repro.cli all --quick --out bench_reports/

Each command prints the paper-style report (and optionally writes it to a
file); ``all`` runs every artifact in sequence.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Dict

from repro.bench import experiments

__all__ = ["main"]

_RUNNERS: Dict[str, Callable] = {
    "fig1": experiments.run_fig1,
    "fig4": experiments.run_fig4,
    "fig5": experiments.run_fig5,
    "fig6": experiments.run_fig6,
    "fig7": experiments.run_fig7,
    "fig8": experiments.run_fig8,
    "table1": experiments.run_table1,
}

_DESCRIPTIONS = {
    "fig1": "crypto decrypt+encrypt throughput vs 40 Gbit RDMA line rate",
    "fig4": "throughput vs read ratio (YCSB mixes, 32 B, 50 clients)",
    "fig5": "throughput vs value size, read-only + update-mostly",
    "fig6": "read-only throughput vs client count (10-100)",
    "fig7": "get() latency CDFs incl. the EPC-paging run",
    "fig8": "get() latency breakdown: networking vs server processing",
    "table1": "EPC working set at 0/1/100k inserted keys",
}


def _run_one(
    name: str,
    quick: bool,
    out_dir: pathlib.Path = None,
    csv: bool = False,
) -> str:
    runner = _RUNNERS[name]
    if name in ("fig1", "fig8"):
        result = runner()  # analytic, no quick knob
    else:
        result = runner(quick=quick)
    text = result.report()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if csv:
            from repro.bench.export import to_csv

            (out_dir / f"{name}.csv").write_text(to_csv(result))
    return text


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description=(
            "Regenerate the evaluation artifacts of 'Precursor' "
            "(Middleware '21)."
        ),
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_RUNNERS) + ["all", "list", "scorecard"],
        help="which figure/table to regenerate ('all' for everything, "
        "'list' to enumerate, 'scorecard' for pass/fail vs the paper)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shortened simulations (smoke-test quality)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also write each report to DIR/<artifact>.txt",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="with --out: additionally write DIR/<artifact>.csv "
        "(plot-ready data)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(_RUNNERS):
            print(f"{name:8s} {_DESCRIPTIONS[name]}")
        print("scorecard  pass/fail verdict on every paper claim")
        return 0
    if args.artifact == "scorecard":
        from repro.bench.scorecard import run_scorecard

        result = run_scorecard(quick=args.quick)
        print(result.report())
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / "scorecard.txt").write_text(result.report() + "\n")
        return 0 if result.passed == result.total else 1
    names = sorted(_RUNNERS) if args.artifact == "all" else [args.artifact]
    for name in names:
        print(
            _run_one(name, quick=args.quick, out_dir=args.out, csv=args.csv)
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
