"""Queue pairs, completion queues and the verbs state machine.

Endpoints communicate by posting work requests to asynchronous queue pairs
(paper §2.2).  Each QP has a send and a receive queue and is associated with
a completion queue that optionally reports an operation's final status.

The QP state machine matters for security: Precursor "can revoke access to
corrupted clients using RDMA queue pair state transitions" (paper §3.9,
citing DARE) -- driving a QP to ERR makes all subsequent posts fail.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import AccessError, ConfigurationError
from repro.rdma.verbs import Opcode, WorkRequest

__all__ = ["QpState", "WorkCompletion", "CompletionQueue", "QueuePair"]


class QpState(enum.Enum):
    """ibv_qp_state subset, in legal transition order."""

    RESET = 0
    INIT = 1
    RTR = 2  # ready to receive
    RTS = 3  # ready to send
    ERR = 4


_LEGAL_TRANSITIONS = {
    QpState.RESET: {QpState.INIT, QpState.ERR},
    QpState.INIT: {QpState.RTR, QpState.ERR, QpState.RESET},
    QpState.RTR: {QpState.RTS, QpState.ERR, QpState.RESET},
    QpState.RTS: {QpState.ERR, QpState.RESET},
    QpState.ERR: {QpState.RESET},
}


@dataclass(frozen=True)
class WorkCompletion:
    """Completion entry: identifies the request and its final status."""

    wr_id: int
    opcode: Opcode
    status: str  # "success" or an error string
    byte_len: int

    @property
    def ok(self) -> bool:
        """True when the operation completed successfully."""
        return self.status == "success"


class CompletionQueue:
    """FIFO of work completions, polled by the application."""

    def __init__(self, depth: int = 4096):
        if depth < 1:
            raise ConfigurationError(f"CQ depth must be >= 1, got {depth}")
        self.depth = depth
        self._entries: Deque[WorkCompletion] = deque()
        self.overflows = 0

    def push(self, completion: WorkCompletion) -> None:
        """Add a completion; counts (and drops) on overflow."""
        if len(self._entries) >= self.depth:
            self.overflows += 1
            return
        self._entries.append(completion)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Remove and return up to ``max_entries`` completions."""
        out = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def __len__(self) -> int:
        return len(self._entries)


class QueuePair:
    """One endpoint of a reliable connection (RC) queue pair."""

    def __init__(
        self,
        qp_num: int,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue = None,
        max_inline: int = 912,
        signal_interval: int = 64,
    ):
        self.qp_num = qp_num
        self.state = QpState.RESET
        self.send_cq = send_cq
        self.recv_cq = recv_cq if recv_cq is not None else send_cq
        #: Largest payload the NIC copies into the WQE (paper: 912 B).
        self.max_inline = max_inline
        #: With selective signaling, one completion per this many sends.
        self.signal_interval = signal_interval
        self.remote: Optional["QueuePair"] = None
        self._recv_queue: Deque[int] = deque()  # posted receive wr_ids
        self._inbox: Deque[bytes] = deque()  # SEND payloads awaiting recv
        self._unsignaled_since = 0
        self.sends_posted = 0
        self.recvs_posted = 0

    # -- state machine -----------------------------------------------------

    def transition(self, new_state: QpState) -> None:
        """Move the QP through the verbs state machine; rejects bad hops."""
        if new_state not in _LEGAL_TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"illegal QP transition {self.state.name} -> {new_state.name}"
            )
        self.state = new_state
        if new_state is QpState.RESET:
            self._recv_queue.clear()
            self._inbox.clear()
            self._unsignaled_since = 0

    def connect(self, remote: "QueuePair") -> None:
        """Wire two QPs into a reliable connection (both end RTS)."""
        for qp in (self, remote):
            if qp.state is not QpState.RESET:
                raise ConfigurationError(
                    f"QP {qp.qp_num} not in RESET (is {qp.state.name})"
                )
        for qp in (self, remote):
            qp.transition(QpState.INIT)
            qp.transition(QpState.RTR)
            qp.transition(QpState.RTS)
        self.remote = remote
        remote.remote = self

    def error_out(self) -> None:
        """Force ERR -- how the server revokes a rogue client (§3.9)."""
        self.state = QpState.ERR

    # -- posting ---------------------------------------------------------------

    def check_can_send(self, wr: WorkRequest) -> None:
        """Validate a send-side post against QP state and inline limits."""
        if self.state is not QpState.RTS:
            raise AccessError(
                f"QP {self.qp_num} cannot send in state {self.state.name}"
            )
        if wr.inline and wr.byte_len > self.max_inline:
            raise ConfigurationError(
                f"inline payload of {wr.byte_len} B exceeds "
                f"max_inline={self.max_inline}"
            )

    def want_signal(self, wr: WorkRequest) -> bool:
        """Apply selective signaling: emit one CQE per signal_interval."""
        if wr.signaled:
            self._unsignaled_since = 0
            return True
        self._unsignaled_since += 1
        if self._unsignaled_since >= self.signal_interval:
            self._unsignaled_since = 0
            return True
        return False

    def post_recv(self, wr_id: int) -> None:
        """Post a receive buffer for an incoming SEND."""
        if self.state not in (QpState.RTR, QpState.RTS, QpState.INIT):
            raise AccessError(
                f"QP {self.qp_num} cannot recv in state {self.state.name}"
            )
        self._recv_queue.append(wr_id)
        self.recvs_posted += 1

    # -- two-sided delivery (used by the fabric) ------------------------------

    def deliver_send(self, data: bytes) -> None:
        """Match an incoming SEND against a posted receive."""
        if not self._recv_queue:
            # RC semantics: receiver not ready -> RNR; simplified to error.
            raise AccessError(
                f"QP {self.qp_num}: receiver-not-ready (no posted receive)"
            )
        wr_id = self._recv_queue.popleft()
        self._inbox.append(data)
        self.recv_cq.push(
            WorkCompletion(
                wr_id=wr_id,
                opcode=Opcode.SEND,
                status="success",
                byte_len=len(data),
            )
        )

    def consume_received(self) -> Optional[bytes]:
        """Pop the oldest received SEND payload, if any."""
        return self._inbox.popleft() if self._inbox else None
