"""Verbs-level work requests and opcodes.

A work request describes one operation posted to a queue pair's send queue.
Precursor uses one-sided WRITEs for both directions of its data path and
adopts two standard optimizations (paper §4, citing Kalia et al.):

- **inline**: payloads up to the NIC's inline threshold (912 B on the
  paper's machines) are copied into the work request itself, sparing the
  NIC a DMA read from host memory and cutting small-message latency;
- **selective signaling**: only every Nth request asks for a completion,
  so the sender does not pay per-message completion handling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["Opcode", "WorkRequest"]


class Opcode(enum.Enum):
    """Operation kinds supported by the substrate."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


@dataclass
class WorkRequest:
    """One entry of a send queue.

    Attributes
    ----------
    wr_id:
        Caller-chosen identifier returned in the completion.
    opcode:
        SEND / RDMA_WRITE / RDMA_READ.
    data:
        Bytes to transmit (WRITE/SEND); ``None`` for READ.
    remote_rkey / remote_offset:
        Target for one-sided operations; unused by SEND.
    length:
        Bytes to fetch for RDMA_READ.
    signaled:
        Whether a work completion should be generated (selective
        signaling posts mostly unsignaled requests).
    inline:
        Whether the payload travels inline in the WQE.
    segments:
        Optional gather list for RDMA_WRITE: ``(remote_offset, length)``
        pairs tiling ``data`` in order.  One posted request then lands
        each slice at its own remote offset -- the coalesced-reply shape
        of the batched server path (one WQE, one doorbell, K frames).
        The wire payload is still the single ``data`` buffer, so
        in-flight tamper flips exactly one byte of exactly one segment.
    """

    wr_id: int
    opcode: Opcode
    data: Optional[bytes] = None
    remote_rkey: int = 0
    remote_offset: int = 0
    length: int = 0
    signaled: bool = True
    inline: bool = False
    segments: Optional[Tuple[Tuple[int, int], ...]] = None

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.SEND, Opcode.RDMA_WRITE):
            if self.data is None:
                raise ConfigurationError(f"{self.opcode.value} requires data")
        elif self.opcode is Opcode.RDMA_READ:
            if self.length <= 0:
                raise ConfigurationError("RDMA_READ requires a positive length")
            if self.inline:
                raise ConfigurationError("RDMA_READ cannot be inline")
        if self.segments is not None:
            if self.opcode is not Opcode.RDMA_WRITE:
                raise ConfigurationError(
                    "gather segments are only valid on RDMA_WRITE"
                )
            if not self.segments:
                raise ConfigurationError("gather list must not be empty")
            total = 0
            for offset, length in self.segments:
                if length <= 0:
                    raise ConfigurationError(
                        f"gather segment length must be positive: {length}"
                    )
                if offset < 0:
                    raise ConfigurationError(
                        f"gather segment offset must be >= 0: {offset}"
                    )
                total += length
            if total != len(self.data):
                raise ConfigurationError(
                    f"gather segments cover {total} bytes but data "
                    f"holds {len(self.data)}"
                )

    @property
    def byte_len(self) -> int:
        """Bytes moved by this request."""
        if self.opcode is Opcode.RDMA_READ:
            return self.length
        return len(self.data)
