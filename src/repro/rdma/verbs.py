"""Verbs-level work requests and opcodes.

A work request describes one operation posted to a queue pair's send queue.
Precursor uses one-sided WRITEs for both directions of its data path and
adopts two standard optimizations (paper §4, citing Kalia et al.):

- **inline**: payloads up to the NIC's inline threshold (912 B on the
  paper's machines) are copied into the work request itself, sparing the
  NIC a DMA read from host memory and cutting small-message latency;
- **selective signaling**: only every Nth request asks for a completion,
  so the sender does not pay per-message completion handling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["Opcode", "WorkRequest"]


class Opcode(enum.Enum):
    """Operation kinds supported by the substrate."""

    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


@dataclass
class WorkRequest:
    """One entry of a send queue.

    Attributes
    ----------
    wr_id:
        Caller-chosen identifier returned in the completion.
    opcode:
        SEND / RDMA_WRITE / RDMA_READ.
    data:
        Bytes to transmit (WRITE/SEND); ``None`` for READ.
    remote_rkey / remote_offset:
        Target for one-sided operations; unused by SEND.
    length:
        Bytes to fetch for RDMA_READ.
    signaled:
        Whether a work completion should be generated (selective
        signaling posts mostly unsignaled requests).
    inline:
        Whether the payload travels inline in the WQE.
    """

    wr_id: int
    opcode: Opcode
    data: Optional[bytes] = None
    remote_rkey: int = 0
    remote_offset: int = 0
    length: int = 0
    signaled: bool = True
    inline: bool = False

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.SEND, Opcode.RDMA_WRITE):
            if self.data is None:
                raise ConfigurationError(f"{self.opcode.value} requires data")
        elif self.opcode is Opcode.RDMA_READ:
            if self.length <= 0:
                raise ConfigurationError("RDMA_READ requires a positive length")
            if self.inline:
                raise ConfigurationError("RDMA_READ cannot be inline")

    @property
    def byte_len(self) -> int:
        """Bytes moved by this request."""
        if self.opcode is Opcode.RDMA_READ:
            return self.length
        return len(self.data)
