"""The in-memory RDMA fabric: the functional "wire".

The fabric executes posted work requests against real
:class:`~repro.rdma.memory.MemoryRegion` buffers, synchronously, with the
full permission model:

- one-sided WRITE/READ resolve the rkey through the *remote host's*
  protection domain and perform the access with bounds/permission checks;
- access to trusted (enclave) regions is refused -- SGX forbids DMA to the
  EPC, which is exactly why Precursor stages payloads in untrusted memory;
- errored QPs refuse service (client revocation, §3.9);
- completions are pushed subject to selective signaling.

Timing is *not* simulated here -- the fabric is the correctness layer.  The
discrete-event simulations charge :class:`~repro.rdma.nic.RNic` costs
instead of moving real bytes.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import AccessError, ConfigurationError
from repro.rdma.memory import ProtectionDomain
from repro.rdma.qp import QpState, QueuePair, WorkCompletion
from repro.rdma.verbs import Opcode, WorkRequest

__all__ = ["Fabric"]


class Fabric:
    """Connects hosts and executes verbs between them."""

    def __init__(self) -> None:
        self._pds: Dict[str, ProtectionDomain] = {}
        self._qp_host: Dict[int, str] = {}
        self._next_qp_num = 1
        self.ops_executed = 0
        self.bytes_moved = 0
        self._faults_pending = 0
        self._obs = None

    def bind_obs(self, registry) -> None:
        """Export verb counts, bytes moved, and CQ depth into ``registry``.

        Idempotent; the per-verb counters are created lazily on first use
        so only opcodes actually posted appear in the exposition.
        """
        self._obs = registry

    def _record_obs(self, wr: WorkRequest, qp: QueuePair, ok: bool) -> None:
        registry = self._obs
        if registry is None:
            return
        verb = wr.opcode.name.lower()
        registry.counter(
            "rdma_verbs_total", "work requests posted", {"verb": verb}
        ).inc()
        if ok:
            registry.counter(
                "rdma_bytes_total", "payload bytes moved by the fabric"
            ).inc(wr.byte_len)
        else:
            registry.counter(
                "rdma_verb_errors_total", "work requests completed in error"
            ).inc()
        registry.gauge(
            "rdma_send_cq_depth", "completions waiting in the send CQ"
        ).set(len(qp.send_cq))

    def inject_faults(self, count: int = 1) -> None:
        """Make the next ``count`` operations fail (link flap / NIC error).

        Test/chaos hook: each affected post completes with an error and
        drives its QP to ERR, exactly like a genuine transport failure.
        """
        if count < 0:
            raise ConfigurationError(f"negative fault count: {count}")
        self._faults_pending += count

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str) -> ProtectionDomain:
        """Attach a host; returns its protection domain."""
        if name in self._pds:
            raise ConfigurationError(f"host {name!r} already attached")
        pd = ProtectionDomain(name=name)
        self._pds[name] = pd
        return pd

    def pd(self, host: str) -> ProtectionDomain:
        """The protection domain of ``host``."""
        if host not in self._pds:
            raise ConfigurationError(f"unknown host {host!r}")
        return self._pds[host]

    def create_qp_pair(
        self, host_a: str, host_b: str, **qp_kwargs
    ) -> tuple:
        """Create and connect a QP on each host; returns (qp_a, qp_b)."""
        from repro.rdma.qp import CompletionQueue

        for host in (host_a, host_b):
            if host not in self._pds:
                raise ConfigurationError(f"unknown host {host!r}")
        qp_a = QueuePair(self._next_qp_num, CompletionQueue(), **qp_kwargs)
        self._qp_host[self._next_qp_num] = host_a
        self._next_qp_num += 1
        qp_b = QueuePair(self._next_qp_num, CompletionQueue(), **qp_kwargs)
        self._qp_host[self._next_qp_num] = host_b
        self._next_qp_num += 1
        qp_a.connect(qp_b)
        return qp_a, qp_b

    # -- execution ---------------------------------------------------------

    def post_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        """Post ``wr`` on ``qp`` and execute it against the remote host.

        Completion status is "success" or the error message; an error also
        drives the QP to ERR, per RC semantics.
        """
        qp.check_can_send(wr)
        if qp.remote is None or qp.remote.state is not QpState.RTS:
            raise AccessError(f"QP {qp.qp_num} has no connected remote")
        qp.sends_posted += 1
        status = "success"
        result: bytes = b""
        if self._faults_pending > 0:
            self._faults_pending -= 1
            status = "injected transport fault"
            qp.error_out()
        else:
            try:
                result = self._execute(qp, wr)
            except AccessError as exc:
                status = str(exc)
                qp.error_out()
        self.ops_executed += 1
        if status == "success":
            self.bytes_moved += wr.byte_len
        if qp.want_signal(wr) or status != "success":
            qp.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=wr.opcode,
                    status=status,
                    byte_len=len(result) if wr.opcode is Opcode.RDMA_READ else wr.byte_len,
                )
            )
        self._record_obs(wr, qp, ok=status == "success")
        if status != "success":
            raise AccessError(status)
        if wr.opcode is Opcode.RDMA_READ:
            wr.data = result

    def _execute(self, qp: QueuePair, wr: WorkRequest) -> bytes:
        remote_host = self._qp_host[qp.remote.qp_num]
        remote_pd = self._pds[remote_host]
        if wr.opcode is Opcode.SEND:
            qp.remote.deliver_send(wr.data)
            return b""
        region = remote_pd.lookup(wr.remote_rkey)
        if wr.opcode is Opcode.RDMA_WRITE:
            region.remote_write(wr.remote_offset, wr.data)
            return b""
        if wr.opcode is Opcode.RDMA_READ:
            return region.remote_read(wr.remote_offset, wr.length)
        raise ConfigurationError(f"unsupported opcode {wr.opcode}")
