"""The in-memory RDMA fabric: the functional "wire".

The fabric executes posted work requests against real
:class:`~repro.rdma.memory.MemoryRegion` buffers, synchronously, with the
full permission model:

- one-sided WRITE/READ resolve the rkey through the *remote host's*
  protection domain and perform the access with bounds/permission checks;
- access to trusted (enclave) regions is refused -- SGX forbids DMA to the
  EPC, which is exactly why Precursor stages payloads in untrusted memory;
- errored QPs refuse service (client revocation, §3.9);
- completions are pushed subject to selective signaling.

Timing is *not* simulated here -- the fabric is the correctness layer.  The
discrete-event simulations charge :class:`~repro.rdma.nic.RNic` costs
instead of moving real bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AccessError, ConfigurationError
from repro.rdma.memory import ProtectionDomain
from repro.rdma.qp import QpState, QueuePair, WorkCompletion
from repro.rdma.verbs import Opcode, WorkRequest

__all__ = ["Fabric", "FaultAction"]


class FaultAction:
    """What a fault hook may do to one posted work request.

    The hook (see :meth:`Fabric.install_fault_hook`) returns one of these
    strings -- or ``None`` for "no fault".  The fabric implements the
    mechanics; the *policy* (which request, which kind, under which seed)
    lives in :class:`repro.faults.engine.FaultEngine`.
    """

    #: Silently lose the write: the post "succeeds" but no bytes land.
    DROP = "drop"
    #: Hold the write back; it lands after ``delay_ops`` later posts.
    DELAY = "delay"
    #: Flip one byte of the payload before it lands (in-flight tamper).
    CORRUPT = "corrupt"
    #: Complete in error and drive the QP to ERR (link flap / NIC fault).
    QP_ERROR = "qp_error"

    ALL = (DROP, DELAY, CORRUPT, QP_ERROR)


class Fabric:
    """Connects hosts and executes verbs between them."""

    def __init__(self) -> None:
        self._pds: Dict[str, ProtectionDomain] = {}
        self._qp_host: Dict[int, str] = {}
        self._next_qp_num = 1
        self.ops_executed = 0
        self.bytes_moved = 0
        self._faults_pending = 0
        self._obs = None
        # Deterministic fault-injection seam (repro.faults): an optional
        # hook consulted per post, plus writes held back by DELAY faults
        # as (countdown, qp, wr) entries.
        self._fault_hook: Optional[
            Callable[[QueuePair, WorkRequest], Optional[str]]
        ] = None
        self._delayed: List[Tuple[int, QueuePair, WorkRequest]] = []
        self.delay_ops = 2

    def bind_obs(self, registry) -> None:
        """Export verb counts, bytes moved, and CQ depth into ``registry``.

        Idempotent; the per-verb counters are created lazily on first use
        so only opcodes actually posted appear in the exposition.
        """
        self._obs = registry

    def _record_obs(self, wr: WorkRequest, qp: QueuePair, ok: bool) -> None:
        registry = self._obs
        if registry is None:
            return
        verb = wr.opcode.name.lower()
        registry.counter(
            "rdma_verbs_total", "work requests posted", {"verb": verb}
        ).inc()
        if ok:
            registry.counter(
                "rdma_bytes_total", "payload bytes moved by the fabric"
            ).inc(wr.byte_len)
        else:
            registry.counter(
                "rdma_verb_errors_total", "work requests completed in error"
            ).inc()
        registry.gauge(
            "rdma_send_cq_depth", "completions waiting in the send CQ"
        ).set(len(qp.send_cq))

    def inject_faults(self, count: int = 1) -> None:
        """Make the next ``count`` operations fail (link flap / NIC error).

        Test/chaos hook: each affected post completes with an error and
        drives its QP to ERR, exactly like a genuine transport failure.
        """
        if count < 0:
            raise ConfigurationError(f"negative fault count: {count}")
        self._faults_pending += count

    def install_fault_hook(
        self, hook: Optional[Callable[[QueuePair, WorkRequest], Optional[str]]]
    ) -> None:
        """Install (or clear, with ``None``) the per-post fault hook.

        The hook is called once per :meth:`post_send` with the QP and work
        request and returns a :class:`FaultAction` string or ``None``.
        Exactly one hook is active at a time; installing over an existing
        one replaces it (the fault engine owns composition).
        """
        self._fault_hook = hook

    def flush_delayed(self) -> int:
        """Deliver every write still held back by DELAY faults.

        Returns the number delivered.  Late deliveries run fault-free (a
        frame is delayed once, not repeatedly re-judged).
        """
        delayed, self._delayed = self._delayed, []
        for _countdown, qp, wr in delayed:
            self._deliver_late(qp, wr)
        return len(delayed)

    def _deliver_late(self, qp: QueuePair, wr: WorkRequest) -> None:
        # A delayed frame lands only if its connection is still usable; a
        # write buffered before a QP error dies with the connection.
        if qp.state is not QpState.RTS:
            return
        if qp.remote is None or qp.remote.state is not QpState.RTS:
            return
        try:
            self._execute(qp, wr)
        except AccessError:
            return
        self.bytes_moved += wr.byte_len

    def _tick_delayed(self) -> None:
        if not self._delayed:
            return
        due = []
        still = []
        for countdown, qp, wr in self._delayed:
            if countdown <= 1:
                due.append((qp, wr))
            else:
                still.append((countdown - 1, qp, wr))
        self._delayed = still
        for qp, wr in due:
            self._deliver_late(qp, wr)

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str) -> ProtectionDomain:
        """Attach a host; returns its protection domain."""
        if name in self._pds:
            raise ConfigurationError(f"host {name!r} already attached")
        pd = ProtectionDomain(name=name)
        self._pds[name] = pd
        return pd

    def pd(self, host: str) -> ProtectionDomain:
        """The protection domain of ``host``."""
        if host not in self._pds:
            raise ConfigurationError(f"unknown host {host!r}")
        return self._pds[host]

    def create_qp_pair(
        self, host_a: str, host_b: str, **qp_kwargs
    ) -> tuple:
        """Create and connect a QP on each host; returns (qp_a, qp_b)."""
        from repro.rdma.qp import CompletionQueue

        for host in (host_a, host_b):
            if host not in self._pds:
                raise ConfigurationError(f"unknown host {host!r}")
        qp_a = QueuePair(self._next_qp_num, CompletionQueue(), **qp_kwargs)
        self._qp_host[self._next_qp_num] = host_a
        self._next_qp_num += 1
        qp_b = QueuePair(self._next_qp_num, CompletionQueue(), **qp_kwargs)
        self._qp_host[self._next_qp_num] = host_b
        self._next_qp_num += 1
        qp_a.connect(qp_b)
        return qp_a, qp_b

    # -- execution ---------------------------------------------------------

    def post_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        """Post ``wr`` on ``qp`` and execute it against the remote host.

        Completion status is "success" or the error message; an error also
        drives the QP to ERR, per RC semantics.
        """
        qp.check_can_send(wr)
        if qp.remote is None or qp.remote.state is not QpState.RTS:
            raise AccessError(f"QP {qp.qp_num} has no connected remote")
        qp.sends_posted += 1
        self._tick_delayed()
        action, detail = self._judge(qp, wr)
        status = "success"
        executed = False
        result: bytes = b""
        if action == FaultAction.QP_ERROR:
            status = "injected transport fault"
            qp.error_out()
        elif action == FaultAction.DROP:
            pass  # silent loss: the post "succeeds", no bytes land
        elif action == FaultAction.DELAY:
            self._delayed.append((detail or self.delay_ops, qp, wr))
        else:
            if action == FaultAction.CORRUPT and wr.data:
                flip_at = (detail or 0) % len(wr.data)
                data = bytearray(wr.data)
                data[flip_at] ^= 0x01
                wr.data = bytes(data)
            try:
                result = self._execute(qp, wr)
                executed = True
            except AccessError as exc:
                status = str(exc)
                qp.error_out()
        self.ops_executed += 1
        if executed:
            self.bytes_moved += wr.byte_len
        if qp.want_signal(wr) or status != "success":
            qp.send_cq.push(
                WorkCompletion(
                    wr_id=wr.wr_id,
                    opcode=wr.opcode,
                    status=status,
                    byte_len=len(result) if wr.opcode is Opcode.RDMA_READ else wr.byte_len,
                )
            )
        self._record_obs(wr, qp, ok=status == "success")
        if status != "success":
            raise AccessError(status)
        if wr.opcode is Opcode.RDMA_READ:
            wr.data = result

    def _judge(
        self, qp: QueuePair, wr: WorkRequest
    ) -> Tuple[Optional[str], Optional[int]]:
        """Decide the fault (if any) for one post.

        Legacy ``inject_faults`` counts take precedence (they model the
        always-available "link flap" shape); otherwise the installed hook
        is consulted.  Hooks may return an action string or an
        ``(action, detail)`` pair -- ``detail`` is the byte offset for
        CORRUPT and the op countdown for DELAY.
        """
        if self._faults_pending > 0:
            self._faults_pending -= 1
            return FaultAction.QP_ERROR, None
        if self._fault_hook is None:
            return None, None
        verdict = self._fault_hook(qp, wr)
        if verdict is None:
            return None, None
        if isinstance(verdict, tuple):
            action, detail = verdict
        else:
            action, detail = verdict, None
        if action not in FaultAction.ALL:
            raise ConfigurationError(f"unknown fault action {action!r}")
        return action, detail

    def _execute(self, qp: QueuePair, wr: WorkRequest) -> bytes:
        remote_host = self._qp_host[qp.remote.qp_num]
        remote_pd = self._pds[remote_host]
        if wr.opcode is Opcode.SEND:
            qp.remote.deliver_send(wr.data)
            return b""
        region = remote_pd.lookup(wr.remote_rkey)
        if wr.opcode is Opcode.RDMA_WRITE:
            if wr.segments:
                # Gather write: land each slice of the wire payload at
                # its own remote offset.  A CORRUPT fault flipped one
                # byte of ``wr.data`` above, so exactly one segment
                # arrives poisoned -- its batch-mates are untouched.
                cursor = 0
                for offset, length in wr.segments:
                    region.remote_write(offset, wr.data[cursor:cursor + length])
                    cursor += length
            else:
                region.remote_write(wr.remote_offset, wr.data)
            return b""
        if wr.opcode is Opcode.RDMA_READ:
            return region.remote_read(wr.remote_offset, wr.length)
        raise ConfigurationError(f"unsupported opcode {wr.opcode}")
