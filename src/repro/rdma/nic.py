"""RNIC timing and resource models.

Two effects drive the paper's network numbers:

- **wire time**: the testbed's ConnectX-3 NICs give ~2 µs round trips and
  40 Gbit/s (server) / 10 Gbit/s (clients) of line rate (paper §2.2, §5.1);
  transfer time is modelled as a fixed per-message base plus bytes over
  bandwidth, with a discount for inline sends (no DMA read of the WQE
  payload descriptor).
- **QP-state cache**: RNICs cache connection state for a bounded number of
  active queue pairs.  Past that, requests miss to host memory over PCIe
  and throughput degrades -- the resource-contention decline the paper
  observes beyond ~55 clients in Fig. 6 (§5.2, citing Chen et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["RNic", "NicMeter", "QpCacheModel"]


class NicMeter:
    """Mutable transfer accounting attachable to a (frozen) :class:`RNic`.

    The timing model itself is immutable; simulations that want per-NIC
    byte/transfer metrics attach a meter and optionally bind it to a
    :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    __slots__ = ("transfers", "bytes", "_obs_transfers", "_obs_bytes")

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes = 0
        self._obs_transfers = None
        self._obs_bytes = None

    def bind_obs(self, registry, labels: dict = None) -> None:
        """Mirror transfer counts/bytes into shared ``nic_*`` metrics."""
        self._obs_transfers = registry.counter(
            "nic_transfers_total", "messages timed by this NIC model", labels
        )
        self._obs_bytes = registry.counter(
            "nic_bytes_total", "bytes timed by this NIC model", labels
        )

    def record(self, nbytes: int) -> None:
        """Count one transfer of ``nbytes``."""
        self.transfers += 1
        self.bytes += nbytes
        if self._obs_transfers is not None:
            self._obs_transfers.inc()
            self._obs_bytes.inc(nbytes)


@dataclass(frozen=True)
class RNic:
    """Timing model of one RDMA NIC port."""

    #: Link rate in Gbit/s (40 for the server, 10 for most clients).
    bandwidth_gbps: float = 40.0
    #: One-way wire + NIC processing latency for a minimal message (ns).
    base_latency_ns: int = 1_000
    #: Extra latency when the NIC must DMA-read a non-inline payload (ns).
    dma_read_ns: int = 250
    #: Largest inline payload (bytes); 912 on the paper's machines.
    max_inline: int = 912
    #: Optional mutable transfer accounting (excluded from eq/hash).
    meter: NicMeter = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.base_latency_ns < 0 or self.dma_read_ns < 0:
            raise ConfigurationError("latencies must be non-negative")

    def serialization_ns(self, nbytes: int) -> float:
        """Time for ``nbytes`` to cross the link at line rate."""
        if nbytes < 0:
            raise ConfigurationError(f"negative size: {nbytes}")
        bits = nbytes * 8
        return bits / self.bandwidth_gbps  # Gbit/s == bit/ns

    def transfer_ns(self, nbytes: int, inline: bool = False) -> int:
        """One-way latency for a message of ``nbytes``."""
        latency = self.base_latency_ns + self.serialization_ns(nbytes)
        if not inline:
            latency += self.dma_read_ns
        if self.meter is not None:
            self.meter.record(nbytes)
        return int(round(latency))

    def line_rate_mbps(self) -> float:
        """Line rate in MB/s (the Fig. 1 'iperf bandwidth' reference)."""
        return self.bandwidth_gbps * 1e3 / 8

    def retransmit_ns(self, nbytes: int, inline: bool = False) -> int:
        """Cost of re-sending a message after a detected loss or QP error.

        RC transport recovers from a fault by re-arming the QP and
        re-posting: the retry pays the full transfer again *plus* one
        base-latency worth of error detection/ack turnaround (the
        timeout/NAK path is far slower than the data path, which is why
        tail latency under faults degrades much faster than the median --
        see ``repro.bench.faulttail``).
        """
        return self.transfer_ns(nbytes, inline=inline) + self.base_latency_ns


class QpCacheModel:
    """Steady-state model of the RNIC's QP/connection-state cache.

    With ``active_qps`` connections and a cache of ``capacity`` entries, a
    uniformly chosen QP's state is cached with probability
    ``min(1, capacity/active_qps)``; a miss pays ``miss_penalty_ns`` of PCIe
    round-trip to fetch the context.  This coarse model is enough to bend
    the Fig. 6 curve downward past the cache size.
    """

    def __init__(self, capacity: int = 56, miss_penalty_ns: int = 1_600):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if miss_penalty_ns < 0:
            raise ConfigurationError("miss penalty must be non-negative")
        self.capacity = capacity
        self.miss_penalty_ns = miss_penalty_ns

    def miss_probability(self, active_qps: int) -> float:
        """Probability one operation misses the QP cache."""
        if active_qps < 0:
            raise ConfigurationError(f"negative QP count: {active_qps}")
        if active_qps <= self.capacity:
            return 0.0
        return 1.0 - self.capacity / active_qps

    def expected_overhead_ns(self, active_qps: int) -> float:
        """Mean added latency per operation from QP-cache misses."""
        return self.miss_probability(active_qps) * self.miss_penalty_ns
