"""RDMA substrate: verbs-style one-sided networking, modelled in memory.

Precursor's data path is one-sided RDMA (paper §2.2, §3.5): clients WRITE
requests directly into per-client ring buffers registered in the server's
*untrusted* memory; server threads poll those buffers without any network
interrupt; replies flow back the same way.  This package reproduces the
programming model:

- :mod:`repro.rdma.memory` -- registered memory regions, rkeys, protection
  domains, permission-checked remote access;
- :mod:`repro.rdma.qp` -- queue pairs with the verbs state machine
  (RESET/INIT/RTR/RTS/ERR -- Precursor revokes rogue clients by driving
  their QP to ERR), work requests, completion queues;
- :mod:`repro.rdma.verbs` -- post_send/post_recv with RDMA WRITE/READ and
  SEND, **inline** sends and **selective signaling** (the two Kalia et al.
  optimizations §4 adopts);
- :mod:`repro.rdma.nic` -- RNIC timing (bandwidth, base latency) and the
  QP-state cache whose misses cause the client-scaling decline in Fig. 6;
- :mod:`repro.rdma.fabric` -- the in-memory "wire" that actually moves
  bytes and refuses DMA into trusted (enclave) memory, enforcing the SGX
  constraint that motivates the whole design.
"""

from repro.rdma.fabric import Fabric
from repro.rdma.memory import AccessFlags, MemoryRegion, ProtectionDomain
from repro.rdma.nic import QpCacheModel, RNic
from repro.rdma.qp import CompletionQueue, QpState, QueuePair, WorkCompletion
from repro.rdma.verbs import Opcode, WorkRequest

__all__ = [
    "MemoryRegion",
    "ProtectionDomain",
    "AccessFlags",
    "QueuePair",
    "QpState",
    "CompletionQueue",
    "WorkCompletion",
    "WorkRequest",
    "Opcode",
    "RNic",
    "QpCacheModel",
    "Fabric",
]
