"""Registered memory regions and protection domains.

RDMA requires applications to register buffers with the NIC before any
remote access (paper §2.2): the OS pins the region and hands out keys -- an
``lkey`` for local use and an ``rkey`` that remote peers must present.  A
peer holding the rkey and the region bounds can read/write the memory
without involving the host CPU, subject to the access flags set at
registration.

Two security-relevant behaviours are modelled faithfully:

- access outside the registered bounds or without the matching permission
  completes with an error (remote access violations);
- regions can be flagged ``trusted`` -- enclave memory.  The fabric refuses
  remote access to them, just as SGX forbids DMA to the EPC, which is the
  very reason Precursor lands payloads in *untrusted* memory.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict

from repro.errors import AccessError, ConfigurationError

__all__ = ["AccessFlags", "MemoryRegion", "ProtectionDomain"]


class AccessFlags(enum.Flag):
    """Registration permissions, mirroring ibv_access_flags."""

    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()


class MemoryRegion:
    """A pinned, registered buffer addressable by (rkey, offset)."""

    def __init__(
        self,
        length: int,
        flags: AccessFlags,
        lkey: int,
        rkey: int,
        trusted: bool = False,
    ):
        if length <= 0:
            raise ConfigurationError(f"region length must be positive: {length}")
        self.length = length
        self.flags = flags
        self.lkey = lkey
        self.rkey = rkey
        #: True for enclave (EPC) memory: remote access must be refused.
        self.trusted = trusted
        self._buf = bytearray(length)

    # -- local access (host CPU, no permission checks beyond bounds) -------

    def read_local(self, offset: int, length: int) -> bytes:
        """Read as the host CPU (e.g. the polling server thread)."""
        self._check_bounds(offset, length)
        return bytes(self._buf[offset : offset + length])

    def write_local(self, offset: int, data: bytes) -> None:
        """Write as the host CPU."""
        self._check_bounds(offset, len(data))
        self._buf[offset : offset + len(data)] = data

    # -- remote access (via the fabric, permission-checked) ----------------

    def remote_read(self, offset: int, length: int) -> bytes:
        """DMA read by a remote peer; enforces REMOTE_READ and bounds."""
        self._check_remote(AccessFlags.REMOTE_READ, offset, length)
        return bytes(self._buf[offset : offset + length])

    def remote_write(self, offset: int, data: bytes) -> None:
        """DMA write by a remote peer; enforces REMOTE_WRITE and bounds."""
        self._check_remote(AccessFlags.REMOTE_WRITE, offset, len(data))
        self._buf[offset : offset + len(data)] = data

    def _check_remote(self, needed: AccessFlags, offset: int, length: int) -> None:
        if self.trusted:
            raise AccessError(
                "DMA to enclave memory: SGX forbids device access to the EPC"
            )
        if not self.flags & needed:
            raise AccessError(
                f"region rkey={self.rkey:#x} lacks {needed.name} permission"
            )
        self._check_bounds(offset, length)

    def _check_bounds(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.length:
            raise AccessError(
                f"access [{offset}, {offset + length}) outside region of "
                f"{self.length} bytes"
            )


class ProtectionDomain:
    """Issues and resolves memory registrations for one host.

    rkeys are allocated from a predictable counter -- deliberately so: the
    paper's security discussion (§3.9) notes that real RDMA rkeys are
    predictable and unauthenticated, citing ReDMArk.  Tests demonstrate the
    resulting attack surface against *untrusted* regions and show the
    trusted region refuses access regardless.
    """

    def __init__(self, name: str = "pd"):
        self.name = name
        self._keys = itertools.count(start=0x1000, step=2)
        self._regions: Dict[int, MemoryRegion] = {}

    def register(
        self, length: int, flags: AccessFlags, trusted: bool = False
    ) -> MemoryRegion:
        """Register a new region; returns it with fresh lkey/rkey."""
        lkey = next(self._keys)
        rkey = next(self._keys)
        region = MemoryRegion(
            length=length, flags=flags, lkey=lkey, rkey=rkey, trusted=trusted
        )
        self._regions[rkey] = region
        return region

    def deregister(self, region: MemoryRegion) -> None:
        """Remove a registration; later remote access fails."""
        if region.rkey not in self._regions:
            raise ConfigurationError(f"rkey {region.rkey:#x} not registered")
        del self._regions[region.rkey]

    def lookup(self, rkey: int) -> MemoryRegion:
        """Resolve an rkey as the NIC would; raises AccessError if unknown."""
        region = self._regions.get(rkey)
        if region is None:
            raise AccessError(f"unknown rkey {rkey:#x}")
        return region

    def __len__(self) -> int:
        return len(self._regions)
