"""Span-based tracing: follow one operation end to end, stage by stage.

A :class:`Trace` is the record of one logical operation (a ``get()``, a
``put()``, one simulated request).  It is made of **stages** -- named,
timed intervals -- opened and closed in strict LIFO order.  Top-level
stages *tile* the trace: whenever a top-level stage opens after a gap (or
the trace finishes with trailing untimed work), the gap is recorded as an
explicit ``(untracked)`` stage.  The invariant the exporters and the
Figure-8 runner rely on is therefore exact::

    sum(stage.duration_ns for top-level stages) == trace.total_ns

Nested stages (depth > 0) attribute time *within* their parent and do not
participate in the tiling sum.

The :class:`Tracer` owns a clock, a bounded buffer of finished traces, and
the *current* trace of each thread.  Cross-layer attribution works because
the server shares the client's tracer: while the client's operation is the
current trace, server-side code calls ``tracer.stage("server.xyz")`` and
its stages land inside the same trace.  When no trace is current (e.g. a
threaded server handling frames on another thread) ``tracer.stage`` is a
no-op, so instrumentation never needs guarding at call sites.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.clock import Clock, WallClock

__all__ = ["Stage", "Trace", "Tracer", "UNTRACKED_STAGE"]

#: Name of the synthetic gap-filling stage.
UNTRACKED_STAGE = "(untracked)"


class Stage:
    """One named, timed interval inside a trace."""

    __slots__ = ("name", "start_ns", "end_ns", "depth", "meta")

    def __init__(
        self, name: str, start_ns: int, depth: int, meta: Dict[str, Any]
    ):
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.depth = depth
        self.meta = meta

    @property
    def closed(self) -> bool:
        """True once the stage has an end timestamp."""
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Stage duration; raises while the stage is still open."""
        if self.end_ns is None:
            raise ObservabilityError(f"stage {self.name!r} is still open")
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:
        end = self.end_ns if self.end_ns is not None else "open"
        return f"Stage({self.name!r}, {self.start_ns}..{end}, depth={self.depth})"


class _StageHandle:
    """Context manager for one stage; closes it in LIFO order."""

    __slots__ = ("_trace", "_stage")

    def __init__(self, trace: "Trace", stage: Optional[Stage]):
        self._trace = trace
        self._stage = stage

    def __enter__(self) -> Optional[Stage]:
        return self._stage

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._trace is not None and self._stage is not None:
            self._trace.close_stage(self._stage)
        return False


class Trace:
    """The record of one operation: ordered stages plus attributes."""

    def __init__(
        self,
        trace_id: int,
        op: str,
        clock: Clock,
        attrs: Dict[str, Any],
        on_finish=None,
    ):
        self.trace_id = trace_id
        self.op = op
        self.attrs = attrs
        self._clock = clock
        self._on_finish = on_finish
        self.start_ns = clock.now_ns()
        self.end_ns: Optional[int] = None
        self.stages: List[Stage] = []
        self._open: List[Stage] = []
        #: End of the last closed *top-level* stage (for gap filling).
        self._tiled_until = self.start_ns

    # -- lifecycle ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has run."""
        return self.end_ns is not None

    @property
    def total_ns(self) -> int:
        """End-to-end latency; raises while the trace is still open."""
        if self.end_ns is None:
            raise ObservabilityError(f"trace {self.trace_id} is still open")
        return self.end_ns - self.start_ns

    def stage(self, name: str, **meta: Any) -> _StageHandle:
        """Open stage ``name``; use as a context manager."""
        if self.finished:
            raise ObservabilityError(
                f"cannot open stage {name!r} on finished trace {self.trace_id}"
            )
        now = self._clock.now_ns()
        if not self._open and now > self._tiled_until:
            # Gap between top-level stages: make the untimed interval an
            # explicit stage so top-level durations always tile the trace.
            gap = Stage(UNTRACKED_STAGE, self._tiled_until, 0, {})
            gap.end_ns = now
            self.stages.append(gap)
            self._tiled_until = now
        stage = Stage(name, now, len(self._open), dict(meta))
        self.stages.append(stage)
        self._open.append(stage)
        return _StageHandle(self, stage)

    def close_stage(self, stage: Stage) -> None:
        """Close ``stage``; must be the innermost open stage (LIFO)."""
        if not self._open:
            raise ObservabilityError(
                f"close of stage {stage.name!r} with no stage open"
            )
        if self._open[-1] is not stage:
            raise ObservabilityError(
                f"out-of-order stage close: {stage.name!r} closed while "
                f"{self._open[-1].name!r} is innermost"
            )
        self._open.pop()
        stage.end_ns = self._clock.now_ns()
        if stage.depth == 0:
            self._tiled_until = stage.end_ns

    def finish(self) -> "Trace":
        """Seal the trace; rejects open stages, records any trailing gap."""
        if self.finished:
            raise ObservabilityError(f"trace {self.trace_id} already finished")
        if self._open:
            names = ", ".join(s.name for s in self._open)
            raise ObservabilityError(
                f"finish with open stages: {names} (close them first)"
            )
        now = self._clock.now_ns()
        if now > self._tiled_until:
            gap = Stage(UNTRACKED_STAGE, self._tiled_until, 0, {})
            gap.end_ns = now
            self.stages.append(gap)
            self._tiled_until = now
        self.end_ns = now
        if self._on_finish is not None:
            self._on_finish(self)
        return self

    def abort(self) -> None:
        """Discard the trace (error paths): close nothing, record nothing."""
        self._open.clear()
        self.end_ns = self.start_ns
        if self._on_finish is not None:
            self._on_finish(self, aborted=True)

    # -- queries -----------------------------------------------------------

    def top_level_stages(self) -> List[Stage]:
        """Closed stages at depth 0, in time order (incl. gap stages)."""
        return [s for s in self.stages if s.depth == 0 and s.closed]

    def stage_names(self, named_only: bool = True) -> List[str]:
        """Names of top-level stages; ``named_only`` drops gap stages."""
        return [
            s.name
            for s in self.top_level_stages()
            if not (named_only and s.name == UNTRACKED_STAGE)
        ]

    def stage_durations(self) -> Dict[str, int]:
        """Total duration per top-level stage name (ns)."""
        out: Dict[str, int] = {}
        for stage in self.top_level_stages():
            out[stage.name] = out.get(stage.name, 0) + stage.duration_ns
        return out

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.finish()
        else:
            self.abort()
        return False

    def __repr__(self) -> str:
        state = "finished" if self.finished else "open"
        return (
            f"Trace(id={self.trace_id}, op={self.op!r}, "
            f"stages={len(self.stages)}, {state})"
        )


class _NullHandle:
    """Returned by ``Tracer.stage`` when no trace is current."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Creates traces, tracks the current one per thread, keeps finished ones.

    ``capacity`` bounds the finished-trace buffer (oldest evicted first) so
    million-operation runs do not accumulate unbounded trace state.
    """

    def __init__(self, clock: Clock = None, capacity: int = 256):
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        self.clock = clock if clock is not None else WallClock()
        self.capacity = capacity
        self.finished: List[Trace] = []
        self.started_total = 0
        self.finished_total = 0
        self.aborted_total = 0
        self.dropped_total = 0
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._obs_dropped = None

    def bind_obs(self, registry) -> None:
        """Export trace-drop accounting into ``registry`` (idempotent).

        Finished traces evicted because the buffer hit ``capacity`` were
        previously invisible truncation; after binding they surface as
        the ``trace_dropped_total`` counter.
        """
        self._obs_dropped = registry.counter(
            "trace_dropped_total",
            "finished traces evicted because the tracer hit capacity",
        )
        if self.dropped_total:
            self._obs_dropped.inc(self.dropped_total)

    # -- current-trace plumbing -------------------------------------------

    @property
    def current(self) -> Optional[Trace]:
        """This thread's active trace, if any."""
        return getattr(self._local, "trace", None)

    def _set_current(self, trace: Optional[Trace]) -> None:
        self._local.trace = trace

    # -- trace lifecycle ---------------------------------------------------

    def start(self, op: str, **attrs: Any) -> Trace:
        """Begin a new trace and make it this thread's current one."""
        if self.current is not None:
            raise ObservabilityError(
                f"trace {self.current.trace_id} still active; finish or "
                "abort it before starting another"
            )
        trace = Trace(
            next(self._ids), op, self.clock, attrs, on_finish=self._retire
        )
        self.started_total += 1
        self._set_current(trace)
        return trace

    def _retire(self, trace: Trace, aborted: bool = False) -> None:
        if self.current is trace:
            self._set_current(None)
        if aborted:
            self.aborted_total += 1
            return
        self.finished_total += 1
        self.finished.append(trace)
        overflow = len(self.finished) - self.capacity
        if overflow > 0:
            del self.finished[:overflow]
            self.dropped_total += overflow
            if self._obs_dropped is not None:
                self._obs_dropped.inc(overflow)

    def abort_current(self) -> None:
        """Abort this thread's active trace, if any (error-path cleanup)."""
        trace = self.current
        if trace is not None:
            trace.abort()

    # -- convenience -------------------------------------------------------

    def stage(self, name: str, **meta: Any):
        """Open a stage on the current trace; no-op when none is active."""
        trace = self.current
        if trace is None:
            return _NULL_HANDLE
        return trace.stage(name, **meta)

    @property
    def last(self) -> Optional[Trace]:
        """Most recently finished trace."""
        return self.finished[-1] if self.finished else None

    def clear(self) -> None:
        """Drop all finished traces (keeps lifetime counters)."""
        self.finished.clear()
