"""Causal request tracing and the sliding-window telemetry pipeline.

Two layers live here (see ``docs/OBSERVABILITY.md``):

**Causal tracing.**  A :class:`TraceContext` is the cross-layer story of
one logical request: a ``trace_id`` minted at the edge (the shard
router), an ordered list of :class:`Hop` records appended by every layer
the request crosses -- routing decisions, server dispatch, replication
acks, client retries/reconnects, failover re-routes, promotions -- and a
final status.  Where span traces (:mod:`repro.obs.span`) answer "where
did the nanoseconds go *inside* one exchange", a context answers "which
machines did this request touch, in what order, and why was it retried".
The :class:`ContextLog` owns the per-thread current context and a
bounded buffer of finished ones, exactly like the tracer does for spans.

**Sliding-window telemetry.**  A :class:`TelemetryPipeline` collects
per-shard latency/outcome samples into per-tick buckets (the existing
log-linear :class:`~repro.obs.metrics.Histogram` does the heavy
lifting), and on every deterministic :meth:`~TelemetryPipeline.tick`
publishes a :class:`ClusterTelemetry` snapshot: windowed p50/p99 per
shard, queue depth, EPC working set, replication lag and fault counts.
Snapshots feed the SLO engine (:mod:`repro.obs.slo`) and the flight
recorder (:mod:`repro.obs.flightrec`) -- and are precisely the input
signal the ROADMAP's elastic autoscaler needs.

Determinism: the pipeline reads time from the same clock as its obs
context, so a run driven on a :class:`~repro.obs.clock.ManualClock` (the
``health`` harness) produces bit-identical snapshots under one seed.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "Hop",
    "TraceContext",
    "ContextLog",
    "ShardSample",
    "ClusterTelemetry",
    "TelemetryPipeline",
]


class Hop:
    """One causal step of a request: which layer touched it, and why."""

    __slots__ = ("seq", "kind", "shard", "t_ns", "detail")

    def __init__(
        self,
        seq: int,
        kind: str,
        shard: Optional[str],
        t_ns: int,
        detail: Dict[str, Any],
    ):
        self.seq = seq
        self.kind = kind
        self.shard = shard
        self.t_ns = t_ns
        self.detail = detail

    def to_dict(self) -> dict:
        """JSON-shaped view of this hop."""
        out = {"seq": self.seq, "kind": self.kind, "t_ns": self.t_ns}
        if self.shard is not None:
            out["shard"] = self.shard
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def __repr__(self) -> str:
        return f"Hop({self.seq}, {self.kind!r}, shard={self.shard!r})"


class TraceContext:
    """The causal record of one logical request across the cluster.

    Minted by the client edge (the shard router), carried implicitly as
    the thread's current context while the operation runs, and appended
    to by every layer via :meth:`ContextLog.hop`.  ``parent`` links a
    context spawned on behalf of another (e.g. repair traffic).
    """

    __slots__ = (
        "trace_id",
        "op",
        "client_id",
        "parent",
        "start_ns",
        "end_ns",
        "status",
        "hops",
    )

    def __init__(
        self,
        trace_id: str,
        op: str,
        client_id: int,
        start_ns: int,
        parent: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.op = op
        self.client_id = client_id
        self.parent = parent
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.status: Optional[str] = None
        self.hops: List[Hop] = []

    @property
    def finished(self) -> bool:
        """True once :meth:`ContextLog.end` sealed this context."""
        return self.end_ns is not None

    @property
    def total_ns(self) -> int:
        """End-to-end latency; raises while the context is still open."""
        if self.end_ns is None:
            raise ObservabilityError(
                f"context {self.trace_id} is still open"
            )
        return self.end_ns - self.start_ns

    def add_hop(
        self, kind: str, shard: Optional[str], t_ns: int, **detail: Any
    ) -> Hop:
        """Append one causal hop (layers call this via the log)."""
        hop = Hop(len(self.hops), kind, shard, t_ns, detail)
        self.hops.append(hop)
        return hop

    def hop_kinds(self) -> List[str]:
        """Hop kinds in causal order (test/report introspection)."""
        return [hop.kind for hop in self.hops]

    def shards_touched(self) -> List[str]:
        """Distinct shards this request crossed, in first-touch order."""
        seen: List[str] = []
        for hop in self.hops:
            if hop.shard is not None and hop.shard not in seen:
                seen.append(hop.shard)
        return seen

    def to_dict(self) -> dict:
        """JSON-shaped view of the whole causal story."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "client_id": self.client_id,
            "parent": self.parent,
            "status": self.status,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "hops": [hop.to_dict() for hop in self.hops],
        }

    def describe(self) -> str:
        """Human-readable causal story: one line per hop."""
        head = (
            f"trace {self.trace_id} op={self.op} client={self.client_id} "
            f"status={self.status or 'open'}"
        )
        if self.finished:
            head += f" total={self.total_ns / 1e6:.3f}ms"
        lines = [head]
        for hop in self.hops:
            rel_ms = (hop.t_ns - self.start_ns) / 1e6
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(hop.detail.items())
            )
            shard = f" shard={hop.shard}" if hop.shard is not None else ""
            lines.append(
                f"  {hop.seq:02d} +{rel_ms:8.3f}ms {hop.kind:<18}"
                f"{shard}{' ' + detail if detail else ''}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = self.status if self.finished else "open"
        return (
            f"TraceContext({self.trace_id!r}, op={self.op!r}, "
            f"hops={len(self.hops)}, {state})"
        )


class ContextLog:
    """Mints trace contexts, tracks the current one per thread.

    Mirrors the :class:`~repro.obs.span.Tracer` contract: ``begin`` while
    a context is active raises (the router guards), ``hop`` with no
    active context is a cheap no-op so instrumentation never needs
    guarding at call sites, and the finished buffer is bounded --
    evictions are counted (``dropped_total``) and exported once
    :meth:`bind_obs` runs.  Unlike span traces, *failed* requests are
    retired too: an error status is exactly what the flight recorder
    wants to keep.
    """

    def __init__(self, clock: Optional[Clock] = None, capacity: int = 512):
        if capacity < 1:
            raise ObservabilityError(
                f"capacity must be >= 1, got {capacity}"
            )
        #: Time source; an :class:`~repro.obs.ObsContext` rebinds this to
        #: its tracer's clock so spans and hops share one timeline.
        self.clock = clock if clock is not None else WallClock()
        self.capacity = capacity
        self.finished: List[TraceContext] = []
        self.started_total = 0
        self.finished_total = 0
        self.dropped_total = 0
        self._seq = 0
        self._local = threading.local()
        self._obs_dropped = None
        #: Called with each retired context (the flight recorder's feed).
        self.on_retire = None

    def bind_obs(self, registry: MetricsRegistry) -> None:
        """Export drop accounting into ``registry`` (idempotent)."""
        self._obs_dropped = registry.counter(
            "trace_context_dropped_total",
            "finished trace contexts evicted because the log hit capacity",
        )
        if self.dropped_total:
            self._obs_dropped.inc(self.dropped_total)

    # -- current-context plumbing ------------------------------------------

    @property
    def current(self) -> Optional[TraceContext]:
        """This thread's active context, if any."""
        return getattr(self._local, "context", None)

    def _set_current(self, context: Optional[TraceContext]) -> None:
        self._local.context = context

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self,
        op: str,
        client_id: int = 0,
        parent: Optional[str] = None,
    ) -> TraceContext:
        """Mint a new context and make it this thread's current one."""
        if self.current is not None:
            raise ObservabilityError(
                f"context {self.current.trace_id} still active; end it "
                "before beginning another"
            )
        self._seq += 1
        context = TraceContext(
            trace_id=f"c{client_id}-{self._seq}",
            op=op,
            client_id=client_id,
            start_ns=self.clock.now_ns(),
            parent=parent,
        )
        self.started_total += 1
        self._set_current(context)
        return context

    def end(self, status: str = "ok") -> Optional[TraceContext]:
        """Seal the current context with ``status`` and retire it.

        Returns the sealed context, or None when none was active (safe
        on error paths that may or may not own a context).
        """
        context = self.current
        if context is None:
            return None
        context.end_ns = self.clock.now_ns()
        context.status = status
        self._set_current(None)
        self.finished_total += 1
        self.finished.append(context)
        overflow = len(self.finished) - self.capacity
        if overflow > 0:
            del self.finished[:overflow]
            self.dropped_total += overflow
            if self._obs_dropped is not None:
                self._obs_dropped.inc(overflow)
        if self.on_retire is not None:
            self.on_retire(context)
        return context

    def hop(self, kind: str, shard: Optional[str] = None, **detail: Any) -> None:
        """Append a hop to the current context; no-op when none is active."""
        context = self.current
        if context is None:
            return
        context.add_hop(kind, shard, self.clock.now_ns(), **detail)

    # -- queries -----------------------------------------------------------

    def get(self, trace_id: str) -> Optional[TraceContext]:
        """Finished (or current) context by id, or None."""
        current = self.current
        if current is not None and current.trace_id == trace_id:
            return current
        for context in reversed(self.finished):
            if context.trace_id == trace_id:
                return context
        return None

    def recent(self, n: Optional[int] = None) -> List[TraceContext]:
        """The most recently finished contexts, oldest first."""
        if n is None:
            return list(self.finished)
        return self.finished[-n:]

    @property
    def last(self) -> Optional[TraceContext]:
        """Most recently finished context."""
        return self.finished[-1] if self.finished else None

    def clear(self) -> None:
        """Drop all finished contexts (keeps lifetime counters)."""
        self.finished.clear()


# ---------------------------------------------------------------------------
# Sliding-window telemetry
# ---------------------------------------------------------------------------


class ShardSample:
    """One shard's windowed aggregate inside a telemetry snapshot."""

    __slots__ = (
        "shard",
        "ops",
        "errors",
        "p50_ns",
        "p99_ns",
        "queue_depth",
        "epc_bytes",
        "replication_lag",
    )

    def __init__(
        self,
        shard: str,
        ops: int = 0,
        errors: int = 0,
        p50_ns: int = 0,
        p99_ns: int = 0,
        queue_depth: int = 0,
        epc_bytes: int = 0,
        replication_lag: int = 0,
    ):
        self.shard = shard
        self.ops = ops
        self.errors = errors
        self.p50_ns = p50_ns
        self.p99_ns = p99_ns
        self.queue_depth = queue_depth
        self.epc_bytes = epc_bytes
        self.replication_lag = replication_lag

    @property
    def error_rate(self) -> float:
        """Windowed error fraction (0.0 when no samples)."""
        return self.errors / self.ops if self.ops else 0.0

    def to_dict(self) -> dict:
        """JSON-shaped view of this sample."""
        return {
            "shard": self.shard,
            "ops": self.ops,
            "errors": self.errors,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "queue_depth": self.queue_depth,
            "epc_bytes": self.epc_bytes,
            "replication_lag": self.replication_lag,
        }

    def __repr__(self) -> str:
        return (
            f"ShardSample({self.shard!r}, ops={self.ops}, "
            f"p99={self.p99_ns}ns)"
        )


class ClusterTelemetry:
    """One published snapshot: every shard's windowed aggregates."""

    __slots__ = ("tick", "t_ns", "window_ticks", "shards", "faults")

    def __init__(
        self,
        tick: int,
        t_ns: int,
        window_ticks: int,
        shards: Dict[str, ShardSample],
        faults: Dict[str, int],
    ):
        self.tick = tick
        self.t_ns = t_ns
        self.window_ticks = window_ticks
        self.shards = shards
        #: Faults injected since the previous tick, per kind.
        self.faults = faults

    def to_dict(self) -> dict:
        """JSON-shaped view of the snapshot."""
        return {
            "tick": self.tick,
            "t_ns": self.t_ns,
            "window_ticks": self.window_ticks,
            "shards": {
                name: sample.to_dict()
                for name, sample in sorted(self.shards.items())
            },
            "faults": dict(sorted(self.faults.items())),
        }

    def __repr__(self) -> str:
        return (
            f"ClusterTelemetry(tick={self.tick}, "
            f"shards={sorted(self.shards)})"
        )


class _TickBucket:
    """Per-shard samples of one tick: a histogram plus outcome counts."""

    __slots__ = ("hist", "ops", "errors")

    def __init__(self, resolution: int):
        self.hist = Histogram(resolution=resolution)
        self.ops = 0
        self.errors = 0


class TelemetryPipeline:
    """Per-shard windowed aggregates published on a deterministic tick.

    Call :meth:`observe` from the request edge (the shard router does),
    then :meth:`tick` on a fixed cadence -- per N operations in the
    health harness, per ``every_ns`` of simulated time via
    :meth:`repro.sim.engine.Simulator.attach_telemetry`, or from a timer
    in a real deployment.  Each tick closes the current per-shard
    buckets, aggregates the last ``window_ticks`` of them (histogram
    merge keeps quantile error bounded), samples the attached cluster's
    probes, and appends a :class:`ClusterTelemetry` snapshot to the
    bounded ``history``.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        window_ticks: int = 4,
        resolution: int = 64,
        history_capacity: int = 128,
        registry: Optional[MetricsRegistry] = None,
    ):
        if window_ticks < 1:
            raise ObservabilityError(
                f"window_ticks must be >= 1, got {window_ticks}"
            )
        if history_capacity < 1:
            raise ObservabilityError(
                f"history_capacity must be >= 1, got {history_capacity}"
            )
        self.clock = clock if clock is not None else WallClock()
        self.window_ticks = window_ticks
        self.resolution = resolution
        self.history: deque = deque(maxlen=history_capacity)
        self.ticks = 0
        self.samples_total = 0
        self._current: Dict[str, _TickBucket] = {}
        self._windows: Dict[str, deque] = {}
        self._cluster = None
        self._slo = None
        self._flight = None
        self._controller = None
        self._registry = registry
        self._last_fault_totals: Dict[str, int] = {}
        self._obs_ticks = None
        if registry is not None:
            self._obs_ticks = registry.counter(
                "telemetry_ticks_total",
                "telemetry snapshots published",
            )

    # -- attachment --------------------------------------------------------

    def attach_cluster(self, cluster) -> None:
        """Probe ``cluster`` (queue depth, EPC, lag) on every tick."""
        self._cluster = cluster

    def attach_slo(self, engine) -> None:
        """Evaluate ``engine``'s rules against every published snapshot."""
        self._slo = engine

    def attach_flight(self, recorder) -> None:
        """Trigger a flight-recorder dump when a tick breaches the SLO."""
        self._flight = recorder

    def attach_controller(self, controller) -> None:
        """Hand every published snapshot to an autoscale control loop.

        ``controller.on_snapshot(snapshot)`` runs at the very end of
        :meth:`tick`, after SLO evaluation -- so the controller sees
        exactly what the operator's dashboards see, and any topology
        change it actuates lands *between* windows, never inside one.
        """
        self._controller = controller

    @property
    def slo(self):
        """The attached SLO engine, if any."""
        return self._slo

    # -- sample intake -----------------------------------------------------

    def observe(
        self, shard: str, op: str, latency_ns: int, ok: bool = True
    ) -> None:
        """Record one operation's outcome against ``shard``."""
        bucket = self._current.get(shard)
        if bucket is None:
            bucket = _TickBucket(self.resolution)
            self._current[shard] = bucket
        bucket.hist.record(max(0, int(latency_ns)))
        bucket.ops += 1
        if not ok:
            bucket.errors += 1
        self.samples_total += 1

    # -- probes ------------------------------------------------------------

    def _probe(self, shard: str) -> Dict[str, int]:
        cluster = self._cluster
        out = {"queue_depth": 0, "epc_bytes": 0, "replication_lag": 0}
        if cluster is None:
            return out
        try:
            server = cluster.server(shard)
        except Exception:
            return out
        queue_depth = getattr(server, "queue_depth", None)
        if queue_depth is not None:
            out["queue_depth"] = queue_depth()
        if not getattr(server, "crashed", False):
            out["epc_bytes"] = server.trusted_working_set_bytes()
        group = getattr(cluster, "group", None)
        if group is not None:
            try:
                out["replication_lag"] = group(shard).lag
            except Exception:
                pass
        return out

    def _fault_deltas(self) -> Dict[str, int]:
        registry = self._registry
        if registry is None:
            return {}
        family = registry._families.get("faults_injected_total")
        if family is None:
            return {}
        deltas: Dict[str, int] = {}
        for key, counter in family.children.items():
            kind = dict(key).get("kind", "")
            last = self._last_fault_totals.get(kind, 0)
            if counter.value > last:
                deltas[kind] = counter.value - last
            self._last_fault_totals[kind] = counter.value
        return deltas

    # -- publication -------------------------------------------------------

    def _shard_names(self) -> List[str]:
        names = set(self._current) | set(self._windows)
        if self._cluster is not None:
            names |= set(self._cluster.shards)
        return sorted(names)

    def tick(self) -> ClusterTelemetry:
        """Close the tick, publish a snapshot, evaluate the SLO rules."""
        self.ticks += 1
        members = (
            set(self._cluster.shards) if self._cluster is not None else None
        )
        shards: Dict[str, ShardSample] = {}
        for shard in self._shard_names():
            window = self._windows.get(shard)
            if window is None:
                window = deque(maxlen=self.window_ticks)
                self._windows[shard] = window
            window.append(self._current.pop(shard, None))
            merged = Histogram(resolution=self.resolution)
            ops = errors = 0
            for bucket in window:
                if bucket is None:
                    continue
                merged.merge(bucket.hist)
                ops += bucket.ops
                errors += bucket.errors
            if (
                members is not None
                and shard not in members
                and all(bucket is None for bucket in window)
            ):
                # A departed shard stays visible while its window drains
                # (late samples still aggregate), then drops out instead
                # of publishing zeros forever -- essential once an
                # autoscaler retires shards mid-run.
                del self._windows[shard]
                continue
            probes = self._probe(shard)
            shards[shard] = ShardSample(
                shard=shard,
                ops=ops,
                errors=errors,
                p50_ns=merged.percentile(50) if merged.count else 0,
                p99_ns=merged.percentile(99) if merged.count else 0,
                **probes,
            )
        snapshot = ClusterTelemetry(
            tick=self.ticks,
            t_ns=self.clock.now_ns(),
            window_ticks=self.window_ticks,
            shards=shards,
            faults=self._fault_deltas(),
        )
        self.history.append(snapshot)
        self._export(shards)
        if self._obs_ticks is not None:
            self._obs_ticks.inc()
        if self._slo is not None:
            breaches = self._slo.evaluate(snapshot)
            if breaches and self._flight is not None:
                self._flight.trigger(
                    "slo_breach",
                    tick=snapshot.tick,
                    breaches=[b.to_dict() for b in breaches],
                )
        if self._controller is not None:
            self._controller.on_snapshot(snapshot)
        return snapshot

    def _export(self, shards: Dict[str, ShardSample]) -> None:
        registry = self._registry
        if registry is None:
            return
        for name, sample in shards.items():
            labels = {"shard": name}
            registry.gauge(
                "telemetry_window_p99_ns",
                "windowed p99 operation latency per shard",
                labels,
            ).set(sample.p99_ns)
            registry.gauge(
                "telemetry_window_p50_ns",
                "windowed p50 operation latency per shard",
                labels,
            ).set(sample.p50_ns)
            registry.gauge(
                "telemetry_queue_depth",
                "requests visible in rings but not yet consumed",
                labels,
            ).set(sample.queue_depth)
            registry.gauge(
                "telemetry_epc_working_set_bytes",
                "enclave-resident working set per shard",
                labels,
            ).set(sample.epc_bytes)
            registry.gauge(
                "telemetry_replication_lag",
                "records the slowest live backup trails per shard",
                labels,
            ).set(sample.replication_lag)

    @property
    def last(self) -> Optional[ClusterTelemetry]:
        """Most recently published snapshot."""
        return self.history[-1] if self.history else None
