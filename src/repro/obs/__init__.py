"""``repro.obs``: unified tracing and metrics across every layer.

The subsystem has three parts (see ``docs/OBSERVABILITY.md``):

- **spans** (:mod:`repro.obs.span`): a :class:`Tracer` follows one
  operation end to end -- client key-gen/encrypt, RDMA write, enclave
  processing, reply, client MAC verify -- as named stages whose top-level
  durations tile the end-to-end latency exactly;
- **metrics** (:mod:`repro.obs.metrics`): a :class:`MetricsRegistry` of
  counters, gauges and bounded log-linear histograms, bound lazily by the
  core/RDMA/SGX/sim layers;
- **exporters** (:mod:`repro.obs.exporters`): JSON-lines traces,
  Prometheus text exposition, and human-readable stage tables, surfaced
  through ``python -m repro.cli trace`` / ``python -m repro.cli metrics``.
"""

from repro.obs.clock import Clock, ManualClock, SimClock, WallClock
from repro.obs.context import ObsContext
from repro.obs.exporters import (
    lint_prometheus,
    prometheus_text,
    stage_breakdown,
    stage_latency_table,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
    traces_to_json_lines,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Stage, Trace, Tracer, UNTRACKED_STAGE

__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "ManualClock",
    "ObsContext",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stage",
    "Trace",
    "Tracer",
    "UNTRACKED_STAGE",
    "trace_to_dict",
    "trace_to_json",
    "traces_to_json_lines",
    "trace_from_json",
    "prometheus_text",
    "lint_prometheus",
    "stage_latency_table",
    "stage_breakdown",
]
