"""``repro.obs``: unified tracing and metrics across every layer.

The subsystem has three parts (see ``docs/OBSERVABILITY.md``):

- **spans** (:mod:`repro.obs.span`): a :class:`Tracer` follows one
  operation end to end -- client key-gen/encrypt, RDMA write, enclave
  processing, reply, client MAC verify -- as named stages whose top-level
  durations tile the end-to-end latency exactly;
- **metrics** (:mod:`repro.obs.metrics`): a :class:`MetricsRegistry` of
  counters, gauges and bounded log-linear histograms, bound lazily by the
  core/RDMA/SGX/sim layers;
- **exporters** (:mod:`repro.obs.exporters`): JSON-lines traces,
  Prometheus text exposition, and human-readable stage tables, surfaced
  through ``python -m repro.cli trace`` / ``python -m repro.cli metrics``;
- **causal tracing** (:mod:`repro.obs.telemetry`): a :class:`ContextLog`
  of cross-layer :class:`TraceContext` hop lists -- which shards a
  request touched, in what order, and why it was retried;
- **telemetry** (:mod:`repro.obs.telemetry`): a sliding-window
  :class:`TelemetryPipeline` publishing per-shard
  :class:`ClusterTelemetry` snapshots on a deterministic tick;
- **SLO engine** (:mod:`repro.obs.slo`): declarative latency/error-budget/
  staleness rules evaluated against every snapshot;
- **flight recorder** (:mod:`repro.obs.flightrec`): bounded rings of
  recent contexts, faults and topology events dumped as one JSON
  artifact on SLO breach, shard crash or a red chaos run.
"""

from repro.obs.clock import Clock, ManualClock, SimClock, WallClock
from repro.obs.context import ObsContext
from repro.obs.exporters import (
    lint_prometheus,
    prometheus_text,
    stage_breakdown,
    stage_latency_table,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
    traces_to_json_lines,
)
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLO_SPEC,
    SloBreach,
    SloEngine,
    SloRule,
    parse_slo,
)
from repro.obs.span import Stage, Trace, Tracer, UNTRACKED_STAGE
from repro.obs.telemetry import (
    ClusterTelemetry,
    ContextLog,
    Hop,
    ShardSample,
    TelemetryPipeline,
    TraceContext,
)

__all__ = [
    "Clock",
    "WallClock",
    "SimClock",
    "ManualClock",
    "ObsContext",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Stage",
    "Trace",
    "Tracer",
    "UNTRACKED_STAGE",
    "trace_to_dict",
    "trace_to_json",
    "traces_to_json_lines",
    "trace_from_json",
    "prometheus_text",
    "lint_prometheus",
    "stage_latency_table",
    "stage_breakdown",
    "Hop",
    "TraceContext",
    "ContextLog",
    "ShardSample",
    "ClusterTelemetry",
    "TelemetryPipeline",
    "DEFAULT_SLO_SPEC",
    "SloRule",
    "SloBreach",
    "SloEngine",
    "parse_slo",
    "FlightRecorder",
]
