"""Exporters: JSON-lines traces, Prometheus text exposition, stage tables.

Three consumers, three formats:

- **JSON lines** for machine post-processing: one trace per line,
  round-trippable through :func:`trace_from_json` (timestamps, stages,
  attributes all preserved);
- **Prometheus text exposition** (version 0.0.4) for scraping a registry:
  ``# HELP`` / ``# TYPE`` headers, labelled samples, histograms as
  cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``;
- **human-readable tables**: the per-stage latency breakdown a person (or
  the Figure-8 runner) reads.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Stage, Trace, UNTRACKED_STAGE

__all__ = [
    "trace_to_dict",
    "trace_to_json",
    "traces_to_json_lines",
    "trace_from_json",
    "prometheus_text",
    "lint_prometheus",
    "stage_latency_table",
    "stage_breakdown",
]


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def trace_to_dict(trace: Trace) -> dict:
    """Serializable view of a finished trace."""
    if not trace.finished:
        raise ObservabilityError("cannot export an unfinished trace")
    return {
        "trace_id": trace.trace_id,
        "op": trace.op,
        "attrs": dict(trace.attrs),
        "start_ns": trace.start_ns,
        "end_ns": trace.end_ns,
        "total_ns": trace.total_ns,
        "stages": [
            {
                "name": s.name,
                "start_ns": s.start_ns,
                "end_ns": s.end_ns,
                "depth": s.depth,
                "meta": dict(s.meta),
            }
            for s in trace.stages
            if s.closed
        ],
    }


def trace_to_json(trace: Trace) -> str:
    """One-line JSON encoding of a finished trace."""
    return json.dumps(trace_to_dict(trace), sort_keys=True, separators=(",", ":"))


def traces_to_json_lines(traces: Iterable[Trace]) -> str:
    """Newline-delimited JSON for a batch of traces (trailing newline)."""
    lines = [trace_to_json(t) for t in traces]
    return "\n".join(lines) + ("\n" if lines else "")


class _FrozenClock:
    """Clock for rehydrated traces: pinned to the recorded end time."""

    def __init__(self, now_ns: int):
        self._now = now_ns

    def now_ns(self) -> int:
        return self._now


def trace_from_json(line: str) -> Trace:
    """Rehydrate one JSON-lines record into a finished :class:`Trace`."""
    data = json.loads(line)
    try:
        clock = _FrozenClock(data["end_ns"])
        trace = Trace(data["trace_id"], data["op"], clock, dict(data["attrs"]))
        trace.start_ns = data["start_ns"]
        trace.end_ns = data["end_ns"]
        trace._tiled_until = data["end_ns"]
        for record in data["stages"]:
            stage = Stage(
                record["name"],
                record["start_ns"],
                record["depth"],
                dict(record.get("meta", ())),
            )
            stage.end_ns = record["end_ns"]
            trace.stages.append(stage)
    except (KeyError, TypeError) as exc:
        raise ObservabilityError(f"malformed trace record: {exc}") from exc
    return trace


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash, newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str], extra: Dict[str, str] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind, help_text, children in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in children:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"{name}{_render_labels(labels)} {_fmt_value(metric.value)}")
            elif isinstance(metric, Histogram):
                for upper, cumulative in metric.bucket_counts():
                    label_str = _render_labels(labels, {"le": str(upper)})
                    lines.append(f"{name}_bucket{label_str} {cumulative}")
                inf_labels = _render_labels(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{inf_labels} {metric.count}")
                lines.append(f"{name}_sum{_render_labels(labels)} {metric.sum}")
                lines.append(f"{name}_count{_render_labels(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)( [0-9]+)?$"
)

# One label pair; the *name* part is deliberately loose so invalid names
# are reported as such rather than as an opaque parse failure.
_LABEL_PAIR_RE = re.compile(r'(?P<name>[^=,{}]*)="(?P<value>(?:[^"\\]|\\.)*)"')

#: The escape sequences the exposition format defines for quoted label
#: values; anything else after a backslash is a lint problem.
_VALID_VALUE_ESCAPES = ("\\", '"', "n")


def _lint_escapes(
    text: str, where: str, lineno: int, problems: List[str],
    valid: Tuple[str, ...] = _VALID_VALUE_ESCAPES,
) -> None:
    """Flag backslash escapes outside the format's defined set."""
    i = 0
    while i < len(text):
        if text[i] == "\\":
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if nxt not in valid:
                problems.append(
                    f"line {lineno}: invalid escape '\\{nxt}' in {where}"
                )
            i += 2
        else:
            i += 1


def _lint_label_block(
    block: str, lineno: int, problems: List[str]
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Validate one ``{k="v",...}`` block; returns the canonical pairs.

    Appends problems (and returns ``None`` on a parse failure) for the
    things a scraper would reject or silently misread: unparseable
    syntax, invalid or reserved (``__``-prefixed) label names, and the
    same label name appearing twice in one sample.
    """
    inner = block[1:-1]
    pairs: List[Tuple[str, str]] = []
    seen: set = set()
    pos = 0
    while pos < len(inner):
        match = _LABEL_PAIR_RE.match(inner, pos)
        if not match:
            problems.append(
                f"line {lineno}: malformed label block {block!r}"
            )
            return None
        name = match.group("name")
        if not _LABEL_RE.match(name):
            problems.append(f"line {lineno}: invalid label name {name!r}")
        elif name.startswith("__"):
            problems.append(f"line {lineno}: reserved label name {name!r}")
        if name in seen:
            problems.append(f"line {lineno}: duplicate label name {name!r}")
        seen.add(name)
        _lint_escapes(
            match.group("value"), f"label {name!r}", lineno, problems
        )
        pairs.append((name, match.group("value")))
        pos = match.end()
        if pos < len(inner):
            if inner[pos] != ",":
                problems.append(
                    f"line {lineno}: malformed label block {block!r}"
                )
                return None
            pos += 1
    return tuple(sorted(pairs))


def lint_prometheus(text: str, require_help: bool = False) -> List[str]:
    """Validate Prometheus text exposition; returns a list of problems.

    Checks the properties scrapers actually depend on: name syntax, TYPE
    before samples, parseable values, per-series monotone cumulative
    histogram buckets ending in ``+Inf``, valid escape sequences in HELP
    text and quoted label values, and -- for labelled series -- valid,
    non-reserved, non-repeated label names plus at most one sample per
    distinct ``(name, labels)`` series.  With ``require_help=True``,
    every family that has samples must also carry a ``# HELP`` line
    (the registry-backed exporters always emit one; hand-written
    fixtures may not, hence the default stays lenient).
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()  # names with a HELP line
    sampled: Dict[str, int] = {}  # base family name -> first sample line
    bucket_state: Dict[str, Tuple[float, float]] = {}  # series -> (last le, last count)
    seen_series: set = set()  # (name, canonical labels) already sampled
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: malformed comment {line!r}")
            elif parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(f"line {lineno}: bad TYPE {line!r}")
                else:
                    typed[parts[2]] = parts[3]
            else:  # HELP
                helped.add(parts[2])
                if len(parts) == 4:
                    _lint_escapes(
                        parts[3], "HELP text", lineno, problems,
                        valid=("\\", "n"),
                    )
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            problems.append(f"line {lineno}: sample {name!r} before its TYPE")
        family = base if base in typed else name
        sampled.setdefault(family, lineno)
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(f"line {lineno}: bad value {match.group('value')!r}")
            continue
        labels = match.group("labels") or ""
        canonical: Tuple[Tuple[str, str], ...] = ()
        if labels:
            parsed = _lint_label_block(labels, lineno, problems)
            if parsed is None:
                continue
            canonical = parsed
        if (name, canonical) in seen_series:
            problems.append(
                f"line {lineno}: duplicate sample for {name}{labels}"
            )
        seen_series.add((name, canonical))
        if name.endswith("_bucket"):
            le_match = re.search(r'le="([^"]*)"', labels)
            if not le_match:
                problems.append(f"line {lineno}: bucket without le label")
                continue
            le_raw = le_match.group(1)
            le = float("inf") if le_raw == "+Inf" else float(le_raw)
            series = base + re.sub(r'le="[^"]*",?', "", labels)
            last_le, last_count = bucket_state.get(series, (float("-inf"), 0.0))
            if le <= last_le:
                problems.append(f"line {lineno}: le not increasing for {series}")
            if value < last_count:
                problems.append(
                    f"line {lineno}: cumulative count decreased for {series}"
                )
            bucket_state[series] = (le, value)
    for series, (last_le, _count) in bucket_state.items():
        if last_le != float("inf"):
            problems.append(f"series {series}: missing +Inf bucket")
    if require_help:
        for family, lineno in sorted(sampled.items(), key=lambda kv: kv[1]):
            if family not in helped:
                problems.append(
                    f"line {lineno}: family {family!r} sampled without HELP"
                )
    return problems


# ---------------------------------------------------------------------------
# Human-readable stage tables
# ---------------------------------------------------------------------------


def stage_breakdown(
    traces: Sequence[Trace],
    group_by: Sequence[str] = (),
) -> Dict[tuple, Dict[str, float]]:
    """Mean per-stage duration (ns) grouped by trace attributes.

    ``group_by`` names trace attributes; traces sharing those attribute
    values are averaged together.  Returns ``{group key: {stage: mean ns}}``
    (the group key is the tuple of attribute values, ``()`` when ungrouped).
    """
    sums: Dict[tuple, Dict[str, float]] = {}
    counts: Dict[tuple, int] = {}
    for trace in traces:
        key = tuple(trace.attrs.get(attr) for attr in group_by)
        bucket = sums.setdefault(key, {})
        for name, duration in trace.stage_durations().items():
            bucket[name] = bucket.get(name, 0.0) + duration
        counts[key] = counts.get(key, 0) + 1
    return {
        key: {name: total / counts[key] for name, total in bucket.items()}
        for key, bucket in sums.items()
    }


def stage_latency_table(
    traces: Sequence[Trace], title: str = "Per-stage latency breakdown"
) -> str:
    """Render mean/min/max per-stage durations and end-to-end shares."""
    if not traces:
        return f"{title}\n(no traces recorded)"
    finished = [t for t in traces if t.finished]
    stage_sums: Dict[str, int] = {}
    stage_mins: Dict[str, int] = {}
    stage_maxs: Dict[str, int] = {}
    stage_counts: Dict[str, int] = {}
    order: List[str] = []
    total_e2e = 0
    for trace in finished:
        total_e2e += trace.total_ns
        for name, duration in trace.stage_durations().items():
            if name not in stage_sums:
                order.append(name)
                stage_sums[name] = 0
                stage_mins[name] = duration
                stage_maxs[name] = duration
                stage_counts[name] = 0
            stage_sums[name] += duration
            stage_counts[name] += 1
            stage_mins[name] = min(stage_mins[name], duration)
            stage_maxs[name] = max(stage_maxs[name], duration)
    header = f"{'stage':<28}{'mean us':>12}{'min us':>12}{'max us':>12}{'share':>9}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name in order:
        mean_ns = stage_sums[name] / stage_counts[name]
        share = stage_sums[name] / total_e2e if total_e2e else 0.0
        lines.append(
            f"{name:<28}"
            f"{mean_ns / 1000:>12.3f}"
            f"{stage_mins[name] / 1000:>12.3f}"
            f"{stage_maxs[name] / 1000:>12.3f}"
            f"{share:>8.1%}"
        )
    lines.append("-" * len(header))
    mean_total = total_e2e / len(finished)
    lines.append(
        f"{'end-to-end':<28}{mean_total / 1000:>12.3f}"
        f"{'':>12}{'':>12}{1:>8.0%}"
    )
    lines.append(
        f"({len(finished)} trace(s); durations tile end-to-end exactly, "
        f"'{UNTRACKED_STAGE}' covers instrumentation gaps)"
    )
    return "\n".join(lines)
