"""The observability context: one tracer + one registry, threaded everywhere.

An :class:`ObsContext` is the single object the ISSUE's "cross-layer"
requirement refers to: the server creates (or receives) one, shares it with
the enclave, the RDMA fabric and its clients, and every layer records into
the same tracer/registry pair.  Experiments that want isolated measurement
construct their own context; components that were never given one fall
back to cheap no-op behavior (``tracer.stage`` with no active trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

__all__ = ["ObsContext"]


@dataclass
class ObsContext:
    """Bundle of the tracing and metrics sinks shared across layers."""

    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls, clock: Clock = None, trace_capacity: int = 256) -> "ObsContext":
        """Build a fresh context, optionally on a specific clock."""
        return cls(tracer=Tracer(clock=clock, capacity=trace_capacity))
