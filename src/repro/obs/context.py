"""The observability context: tracer, registry, contexts -- threaded everywhere.

An :class:`ObsContext` is the single object the ISSUE's "cross-layer"
requirement refers to: the server creates (or receives) one, shares it with
the enclave, the RDMA fabric and its clients, and every layer records into
the same sinks.  Experiments that want isolated measurement construct their
own context; components that were never given one fall back to cheap no-op
behavior (``tracer.stage`` / ``ctxlog.hop`` with nothing active).

Since the telemetry PR the bundle holds up to five sinks:

- ``tracer`` -- per-operation span traces (:mod:`repro.obs.span`);
- ``registry`` -- counters/gauges/histograms (:mod:`repro.obs.metrics`);
- ``ctxlog`` -- causal trace contexts with cross-layer hop lists
  (:mod:`repro.obs.telemetry`), always present;
- ``telemetry`` -- the sliding-window pipeline, attached on demand via
  :meth:`ObsContext.attach_telemetry`;
- ``flight`` -- the flight recorder, attached via
  :meth:`ObsContext.attach_flight`.

Layers record hops with :meth:`ObsContext.hop` and topology events with
:meth:`ObsContext.record_event`; both are no-ops when the corresponding
sink is absent or idle, so instrumentation never needs guarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer
from repro.obs.telemetry import ContextLog

__all__ = ["ObsContext"]


@dataclass
class ObsContext:
    """Bundle of the tracing, metrics and telemetry sinks shared by layers."""

    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    ctxlog: ContextLog = field(default_factory=ContextLog)
    telemetry: Optional[Any] = None
    flight: Optional[Any] = None

    def __post_init__(self):
        """Put every sink on the tracer's clock and bind drop counters."""
        self.ctxlog.clock = self.tracer.clock
        self.tracer.bind_obs(self.registry)
        self.ctxlog.bind_obs(self.registry)

    @classmethod
    def create(cls, clock: Clock = None, trace_capacity: int = 256) -> "ObsContext":
        """Build a fresh context, optionally on a specific clock."""
        return cls(tracer=Tracer(clock=clock, capacity=trace_capacity))

    # -- causal tracing convenience ---------------------------------------

    def hop(self, kind: str, shard: str = None, **detail: Any) -> None:
        """Append a causal hop to the active trace context (no-op when idle)."""
        self.ctxlog.hop(kind, shard=shard, **detail)

    def record_event(self, kind: str, **fields: Any) -> None:
        """Record a topology event into the flight recorder, if attached."""
        if self.flight is not None:
            self.flight.record_event(
                kind, t_ns=self.tracer.clock.now_ns(), **fields
            )

    # -- optional sinks ----------------------------------------------------

    def attach_flight(self, flight) -> "ObsContext":
        """Wire a flight recorder into this context (and the pipeline)."""
        self.flight = flight
        flight.clock = self.tracer.clock
        self.ctxlog.on_retire = flight.record_context
        if self.telemetry is not None:
            self.telemetry.attach_flight(flight)
            flight.pipeline = self.telemetry
        return self

    def attach_telemetry(self, pipeline) -> "ObsContext":
        """Wire a telemetry pipeline into this context (and the recorder)."""
        self.telemetry = pipeline
        pipeline.clock = self.tracer.clock
        if self.flight is not None:
            pipeline.attach_flight(self.flight)
            self.flight.pipeline = pipeline
        return self
