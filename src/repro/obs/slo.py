"""Declarative SLO rules evaluated against telemetry snapshots.

Rules are written in a compact comma-separated spec so they can ride a
CLI flag or a config line::

    latency:p99<1ms:min=8,errors:budget=2%:burn<5,staleness:lag<32

Three rule kinds:

``latency:pXX<LIMIT[:shard=GLOB][:min=N]``
    Windowed percentile objective.  ``LIMIT`` accepts ns/us/ms/s units;
    only p50 and p99 are supported (they are what the log-linear
    histograms export).  ``min`` suppresses evaluation until the window
    holds at least N samples so a cold window cannot fire.

``errors:budget=P%[:burn<B][:shard=GLOB][:min=N]``
    Error budget with burn-rate alerting: with windowed error rate
    ``e`` and budget ``p``, the burn rate is ``e / p`` and the rule
    breaches when it exceeds ``B`` (default 1.0 -- i.e. the budget
    itself is being consumed faster than allotted).

``staleness:lag<N[:shard=GLOB]``
    Replication staleness bound: the slowest live backup may trail the
    primary by at most N records.

``shard=GLOB`` uses :func:`fnmatch.fnmatch` so ``shard=shard-*`` or an
exact name both work; the default ``*`` matches every shard.  The
:class:`SloEngine` evaluates every rule against every published
:class:`~repro.obs.telemetry.ClusterTelemetry` snapshot, returning the
*new* breaches from that tick and accumulating all of them for the
final report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_SLO_SPEC",
    "SloRule",
    "SloBreach",
    "SloEngine",
    "parse_slo",
]

#: Sensible defaults for the modelled cluster: sub-millisecond p99 once
#: eight samples exist, a 2% error budget burning no faster than 5x,
#: and backups at most 32 records behind.
DEFAULT_SLO_SPEC = "latency:p99<1ms:min=8,errors:budget=2%:burn<5,staleness:lag<32"

_UNITS_NS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}


@dataclass(frozen=True)
class SloRule:
    """One parsed objective; ``kind`` decides which fields matter."""

    kind: str  # "latency" | "errors" | "staleness"
    shard: str = "*"
    percentile: int = 99  # latency
    limit_ns: int = 0  # latency
    budget: float = 0.0  # errors (fraction, e.g. 0.02)
    burn_limit: float = 1.0  # errors
    lag_limit: int = 0  # staleness
    min_samples: int = 1  # latency / errors

    @property
    def name(self) -> str:
        """Stable short name used in reports and breach records."""
        if self.kind == "latency":
            core = f"latency:p{self.percentile}<{self.limit_ns}ns"
        elif self.kind == "errors":
            core = f"errors:budget={self.budget:g}:burn<{self.burn_limit:g}"
        else:
            core = f"staleness:lag<{self.lag_limit}"
        if self.shard != "*":
            core += f":shard={self.shard}"
        return core

    def matches(self, shard: str) -> bool:
        """Whether this rule applies to ``shard``."""
        return fnmatch(shard, self.shard)


@dataclass
class SloBreach:
    """One rule violated by one shard at one tick, with evidence."""

    tick: int
    t_ns: int
    rule: str
    kind: str
    shard: str
    value: float
    limit: float
    evidence: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-shaped view for reports and flight-recorder dumps."""
        return {
            "tick": self.tick,
            "t_ns": self.t_ns,
            "rule": self.rule,
            "kind": self.kind,
            "shard": self.shard,
            "value": self.value,
            "limit": self.limit,
            "evidence": dict(self.evidence),
        }

    def describe(self) -> str:
        """One-line human rendering."""
        if self.kind == "latency":
            return (
                f"tick {self.tick}: {self.shard} p{self.evidence.get('percentile', '?')}"
                f"={self.value / 1e6:.3f}ms > {self.limit / 1e6:.3f}ms "
                f"(window ops={self.evidence.get('ops')})"
            )
        if self.kind == "errors":
            return (
                f"tick {self.tick}: {self.shard} burn-rate={self.value:.2f} "
                f"> {self.limit:g} (error_rate={self.evidence.get('error_rate'):.4f} "
                f"budget={self.evidence.get('budget'):g})"
            )
        return (
            f"tick {self.tick}: {self.shard} replication lag={self.value:.0f} "
            f"> {self.limit:.0f}"
        )


def _parse_duration_ns(text: str) -> int:
    for unit, scale in sorted(_UNITS_NS.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(unit):
            number = text[: -len(unit)]
            try:
                return int(float(number) * scale)
            except ValueError:
                break
    raise ConfigurationError(
        f"bad duration {text!r}: expected e.g. 500us, 1ms, 2s"
    )


def _split_fields(parts: List[str], rule_text: str) -> Dict[str, str]:
    fields: Dict[str, str] = {}
    for part in parts:
        if "=" in part:
            key, _, value = part.partition("=")
        elif "<" in part:
            key, _, value = part.partition("<")
        else:
            raise ConfigurationError(
                f"bad SLO clause {part!r} in rule {rule_text!r}"
            )
        if not key or not value:
            raise ConfigurationError(
                f"bad SLO clause {part!r} in rule {rule_text!r}"
            )
        if key in fields:
            raise ConfigurationError(
                f"duplicate clause {key!r} in rule {rule_text!r}"
            )
        fields[key] = value
    return fields


def _take(fields: Dict[str, str], key: str) -> Optional[str]:
    return fields.pop(key, None)


def parse_slo(spec: str) -> List[SloRule]:
    """Parse a comma-separated SLO spec into rules.

    Raises :class:`~repro.errors.ConfigurationError` on any malformed
    rule so a bad ``--slo`` flag fails fast with exit code 2.
    """
    rules: List[SloRule] = []
    for rule_text in (piece.strip() for piece in spec.split(",")):
        if not rule_text:
            continue
        parts = rule_text.split(":")
        kind = parts[0]
        fields = _split_fields(parts[1:], rule_text)
        shard = _take(fields, "shard") or "*"
        if kind == "latency":
            target = None
            for pct in (50, 99):
                value = _take(fields, f"p{pct}")
                if value is not None:
                    if target is not None:
                        raise ConfigurationError(
                            f"rule {rule_text!r} names two percentiles"
                        )
                    target = (pct, value)
            if target is None:
                raise ConfigurationError(
                    f"latency rule {rule_text!r} needs p50<... or p99<..."
                )
            min_text = _take(fields, "min")
            rule = SloRule(
                kind="latency",
                shard=shard,
                percentile=target[0],
                limit_ns=_parse_duration_ns(target[1]),
                min_samples=int(min_text) if min_text else 1,
            )
        elif kind == "errors":
            budget_text = _take(fields, "budget")
            if not budget_text or not budget_text.endswith("%"):
                raise ConfigurationError(
                    f"errors rule {rule_text!r} needs budget=N%"
                )
            try:
                budget = float(budget_text[:-1]) / 100.0
            except ValueError:
                raise ConfigurationError(
                    f"bad budget {budget_text!r} in rule {rule_text!r}"
                )
            if budget <= 0:
                raise ConfigurationError(
                    f"budget must be positive in rule {rule_text!r}"
                )
            burn_text = _take(fields, "burn")
            min_text = _take(fields, "min")
            rule = SloRule(
                kind="errors",
                shard=shard,
                budget=budget,
                burn_limit=float(burn_text) if burn_text else 1.0,
                min_samples=int(min_text) if min_text else 1,
            )
        elif kind == "staleness":
            lag_text = _take(fields, "lag")
            if lag_text is None:
                raise ConfigurationError(
                    f"staleness rule {rule_text!r} needs lag<N"
                )
            rule = SloRule(
                kind="staleness", shard=shard, lag_limit=int(lag_text)
            )
        else:
            raise ConfigurationError(
                f"unknown SLO rule kind {kind!r} in {rule_text!r}"
            )
        if fields:
            raise ConfigurationError(
                f"unknown clause(s) {sorted(fields)} in rule {rule_text!r}"
            )
        rules.append(rule)
    if not rules:
        raise ConfigurationError(f"SLO spec {spec!r} contains no rules")
    return rules


class SloEngine:
    """Evaluates parsed rules against every telemetry snapshot."""

    def __init__(self, rules: List[SloRule]):
        if not rules:
            raise ConfigurationError("SloEngine needs at least one rule")
        self.rules = list(rules)
        #: Every breach observed so far, in tick order.
        self.breaches: List[SloBreach] = []
        self.ticks_evaluated = 0

    @classmethod
    def from_spec(cls, spec: Optional[str] = None) -> "SloEngine":
        """Build an engine from a spec string (default rules when None)."""
        return cls(parse_slo(spec if spec else DEFAULT_SLO_SPEC))

    @property
    def ok(self) -> bool:
        """True while no rule has ever breached."""
        return not self.breaches

    def evaluate(self, snapshot) -> List[SloBreach]:
        """Check every rule against ``snapshot``; return new breaches."""
        self.ticks_evaluated += 1
        new: List[SloBreach] = []
        for shard, sample in sorted(snapshot.shards.items()):
            for rule in self.rules:
                if not rule.matches(shard):
                    continue
                breach = self._check(rule, snapshot, shard, sample)
                if breach is not None:
                    new.append(breach)
        self.breaches.extend(new)
        return new

    def _check(self, rule, snapshot, shard, sample):
        if rule.kind == "latency":
            if sample.ops < rule.min_samples:
                return None
            value = sample.p99_ns if rule.percentile == 99 else sample.p50_ns
            if value <= rule.limit_ns:
                return None
            return SloBreach(
                tick=snapshot.tick,
                t_ns=snapshot.t_ns,
                rule=rule.name,
                kind="latency",
                shard=shard,
                value=float(value),
                limit=float(rule.limit_ns),
                evidence={
                    "percentile": rule.percentile,
                    "p50_ns": sample.p50_ns,
                    "p99_ns": sample.p99_ns,
                    "ops": sample.ops,
                    "window_ticks": snapshot.window_ticks,
                },
            )
        if rule.kind == "errors":
            if sample.ops < rule.min_samples:
                return None
            burn = sample.error_rate / rule.budget
            if burn <= rule.burn_limit:
                return None
            return SloBreach(
                tick=snapshot.tick,
                t_ns=snapshot.t_ns,
                rule=rule.name,
                kind="errors",
                shard=shard,
                value=burn,
                limit=rule.burn_limit,
                evidence={
                    "error_rate": sample.error_rate,
                    "budget": rule.budget,
                    "errors": sample.errors,
                    "ops": sample.ops,
                    "window_ticks": snapshot.window_ticks,
                },
            )
        # staleness
        if sample.replication_lag <= rule.lag_limit:
            return None
        return SloBreach(
            tick=snapshot.tick,
            t_ns=snapshot.t_ns,
            rule=rule.name,
            kind="staleness",
            shard=shard,
            value=float(sample.replication_lag),
            limit=float(rule.lag_limit),
            evidence={"replication_lag": sample.replication_lag},
        )

    def report(self) -> str:
        """Multi-line text report of all breaches (or a clean bill)."""
        lines = [
            f"SLO report: {len(self.rules)} rule(s), "
            f"{self.ticks_evaluated} tick(s) evaluated"
        ]
        for rule in self.rules:
            lines.append(f"  rule {rule.name}")
        if self.ok:
            lines.append("  status: OK (no breaches)")
        else:
            lines.append(f"  status: BREACHED ({len(self.breaches)})")
            for breach in self.breaches:
                lines.append("  " + breach.describe())
        return "\n".join(lines)
