"""Breach-triggered flight recorder: the cluster's black box.

The recorder keeps small bounded ring buffers of the most recent

* finished trace contexts (fed by :class:`~repro.obs.telemetry.ContextLog`
  via its ``on_retire`` hook),
* fault-log entries (fed by :class:`~repro.faults.engine.FaultEngine`),
* topology events (epoch installs, crashes, promotions, migrations --
  fed by the cluster/replica layers through ``ObsContext.record_event``),

and on :meth:`FlightRecorder.trigger` -- SLO breach, shard crash, or a
red ``chaos`` run -- freezes them all into one JSON-able dump together
with the recent telemetry snapshots and accumulated SLO breaches.  The
dump is everything needed to debug the incident offline: which fault
fired, which requests it hurt (with their full causal hop lists), what
the windowed percentiles looked like, and how the topology reacted.

Dumps are deterministic under a seeded run on a manual clock, so tests
pin their structure and CI archives them as artifacts.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

from repro.errors import ObservabilityError
from repro.obs.clock import Clock, WallClock

__all__ = ["FlightRecorder"]

_DUMP_VERSION = 1
_REQUIRED_KEYS = ("version", "trigger", "contexts", "faults", "events")


class FlightRecorder:
    """Bounded rings of recent spans, faults and topology events."""

    def __init__(
        self,
        context_capacity: int = 64,
        fault_capacity: int = 256,
        event_capacity: int = 128,
        dump_capacity: int = 4,
    ):
        if min(context_capacity, fault_capacity, event_capacity, dump_capacity) < 1:
            raise ObservabilityError("flight-recorder capacities must be >= 1")
        #: Time source; ``ObsContext.attach_flight`` rebinds this to the
        #: context's clock so dump timestamps share the run's timeline.
        self.clock: Clock = WallClock()
        self.contexts: deque = deque(maxlen=context_capacity)
        self.faults: deque = deque(maxlen=fault_capacity)
        self.events: deque = deque(maxlen=event_capacity)
        self.dumps: deque = deque(maxlen=dump_capacity)
        self.triggers_total = 0
        #: Optional telemetry pipeline whose snapshot history and SLO
        #: breaches are embedded in every dump.
        self.pipeline = None

    # -- intake ------------------------------------------------------------

    def record_context(self, context) -> None:
        """Ring-buffer one finished trace context (``on_retire`` hook)."""
        self.contexts.append(context.to_dict())

    def record_fault(self, entry: str, t_ns: Optional[int] = None) -> None:
        """Ring-buffer one fault-log entry (``kind`` or ``kind:detail``)."""
        self.faults.append(
            {
                "entry": entry,
                "t_ns": t_ns if t_ns is not None else self.clock.now_ns(),
            }
        )

    def record_event(self, kind: str, t_ns: Optional[int] = None, **fields: Any) -> None:
        """Ring-buffer one topology event (crash, promotion, epoch...)."""
        event = {
            "kind": kind,
            "t_ns": t_ns if t_ns is not None else self.clock.now_ns(),
        }
        event.update(fields)
        self.events.append(event)

    # -- dumping -----------------------------------------------------------

    def trigger(self, reason: str, **info: Any) -> dict:
        """Freeze the rings into a dump; returns (and retains) it."""
        self.triggers_total += 1
        trigger: Dict[str, Any] = {
            "reason": reason,
            "t_ns": self.clock.now_ns(),
            "seq": self.triggers_total,
        }
        trigger.update(info)
        dump: Dict[str, Any] = {
            "version": _DUMP_VERSION,
            "trigger": trigger,
            "contexts": list(self.contexts),
            "faults": list(self.faults),
            "events": list(self.events),
        }
        pipeline = self.pipeline
        if pipeline is not None:
            dump["snapshots"] = [snap.to_dict() for snap in pipeline.history]
            slo = getattr(pipeline, "slo", None)
            if slo is not None:
                dump["breaches"] = [b.to_dict() for b in slo.breaches]
        self.dumps.append(dump)
        return dump

    @property
    def last_dump(self) -> Optional[dict]:
        """Most recent dump, or None if nothing has triggered."""
        return self.dumps[-1] if self.dumps else None

    def write(self, path: str, dump: Optional[dict] = None) -> str:
        """Serialise ``dump`` (default: the last one) to ``path`` as JSON."""
        dump = dump if dump is not None else self.last_dump
        if dump is None:
            raise ObservabilityError("no flight-recorder dump to write")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- offline analysis --------------------------------------------------

    @staticmethod
    def load(path: str) -> dict:
        """Parse and validate a dump written by :meth:`write`.

        Raises :class:`~repro.errors.ObservabilityError` when the file
        is not a structurally valid flight-recorder artifact.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                dump = json.load(fh)
        except (OSError, ValueError) as exc:
            raise ObservabilityError(
                f"unreadable flight-recorder dump {path!r}: {exc}"
            )
        FlightRecorder.validate(dump)
        return dump

    @staticmethod
    def validate(dump: Any) -> None:
        """Structural check shared by :meth:`load` and tests."""
        if not isinstance(dump, dict):
            raise ObservabilityError("flight-recorder dump is not an object")
        missing = [key for key in _REQUIRED_KEYS if key not in dump]
        if missing:
            raise ObservabilityError(
                f"flight-recorder dump missing key(s): {missing}"
            )
        if dump["version"] != _DUMP_VERSION:
            raise ObservabilityError(
                f"unsupported dump version {dump['version']!r}"
            )
        for key in ("contexts", "faults", "events"):
            if not isinstance(dump[key], list):
                raise ObservabilityError(f"dump field {key!r} is not a list")
        if not isinstance(dump["trigger"], dict) or "reason" not in dump["trigger"]:
            raise ObservabilityError("dump trigger lacks a reason")

    @staticmethod
    def render_trace(dump: dict, trace_id: str) -> str:
        """Re-render one context from a dump as its causal story."""
        for context in dump.get("contexts", []):
            if context.get("trace_id") != trace_id:
                continue
            start = context.get("start_ns") or 0
            end = context.get("end_ns")
            head = (
                f"trace {trace_id} op={context.get('op')} "
                f"client={context.get('client_id')} "
                f"status={context.get('status')}"
            )
            if end is not None:
                head += f" total={(end - start) / 1e6:.3f}ms"
            lines = [head]
            for hop in context.get("hops", []):
                rel_ms = (hop.get("t_ns", start) - start) / 1e6
                shard = hop.get("shard")
                detail = hop.get("detail") or {}
                detail_text = " ".join(
                    f"{k}={v}" for k, v in sorted(detail.items())
                )
                lines.append(
                    f"  {hop.get('seq', 0):02d} +{rel_ms:8.3f}ms "
                    f"{hop.get('kind', '?'):<18}"
                    f"{' shard=' + shard if shard else ''}"
                    f"{' ' + detail_text if detail_text else ''}"
                )
            return "\n".join(lines)
        raise ObservabilityError(
            f"trace {trace_id!r} not present in flight-recorder dump"
        )

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(contexts={len(self.contexts)}, "
            f"faults={len(self.faults)}, events={len(self.events)}, "
            f"dumps={len(self.dumps)})"
        )
