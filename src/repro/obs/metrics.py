"""Metrics: counters, gauges, and bounded log-linear histograms.

The :class:`MetricsRegistry` is the single place a process's metrics live.
Call sites obtain metric instances by name (plus optional labels) and the
registry guarantees one instance per (name, labels) pair, rejecting
type conflicts -- so the RDMA fabric, the enclave, the EPC cache and the
simulator can all bind lazily without coordinating.

The histogram is log-linear (HdrHistogram-style): each power-of-two range
is split into ``resolution`` linear sub-buckets, giving a *relative*
quantile error of at most ``1 / (2 * resolution)`` with memory bounded by
``resolution * 64`` buckets regardless of how many samples are recorded.
This is what lets :class:`~repro.sim.stats.LatencyRecorder` offer a
bounded-memory mode for million-operation simulated runs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; got increment {amount}"
            )
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, clock, bytes held)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Histogram:
    """Bounded log-linear histogram of non-negative integer samples.

    ``resolution`` (a power of two) sub-buckets per power-of-two range;
    values below ``resolution`` are recorded exactly.  Quantiles come back
    as bucket midpoints, so the relative error is at most
    ``1 / (2 * resolution)`` for any sample distribution.
    """

    __slots__ = ("resolution", "_r_bits", "_buckets", "count", "sum", "min", "max")

    def __init__(self, resolution: int = 64):
        if resolution < 2 or resolution & (resolution - 1):
            raise ObservabilityError(
                f"resolution must be a power of two >= 2, got {resolution}"
            )
        self.resolution = resolution
        self._r_bits = resolution.bit_length() - 1
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # -- bucket arithmetic -------------------------------------------------

    def _index(self, value: int) -> int:
        if value < self.resolution:
            return value
        shift = value.bit_length() - 1 - self._r_bits
        sub = value >> shift  # in [resolution, 2 * resolution)
        return (shift + 1) * self.resolution + (sub - self.resolution)

    def _bounds(self, index: int) -> Tuple[int, int]:
        """Half-open value range [lo, hi) covered by bucket ``index``."""
        if index < 2 * self.resolution:
            return index, index + 1
        shift = index // self.resolution - 1
        sub = self.resolution + index % self.resolution
        return sub << shift, (sub + 1) << shift

    def _midpoint(self, index: int) -> int:
        lo, hi = self._bounds(index)
        return (lo + hi - 1) // 2

    # -- recording ---------------------------------------------------------

    def record(self, value: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        value = int(value)
        if value < 0:
            raise ObservabilityError(f"negative sample: {value}")
        if count < 1:
            raise ObservabilityError(f"count must be >= 1, got {count}")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same resolution)."""
        if other.resolution != self.resolution:
            raise ObservabilityError(
                f"resolution mismatch: {self.resolution} vs {other.resolution}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.sum += other.sum
        for attr in ("min", "max"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            ours = getattr(self, attr)
            if ours is None:
                setattr(self, attr, theirs)
            elif attr == "min":
                self.min = min(ours, theirs)
            else:
                self.max = max(ours, theirs)

    # -- queries -----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when nothing has been recorded."""
        return self.count == 0

    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Approximate ``q``-quantile, ``q`` in (0, 1]; exact at the edges."""
        if not 0 < q <= 1:
            raise ObservabilityError(f"quantile out of range: {q}")
        if self.count == 0:
            raise ObservabilityError("no samples recorded")
        if q == 1:
            return self.max
        rank = max(1, min(self.count, math.ceil(q * self.count)))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                mid = self._midpoint(index)
                # Never report outside the observed sample range.
                return max(self.min, min(self.max, mid))
        return self.max  # unreachable; defensive

    def percentile(self, pct: float) -> int:
        """Approximate nearest-rank percentile, ``pct`` in (0, 100]."""
        if not 0 < pct <= 100:
            raise ObservabilityError(f"percentile out of range: {pct}")
        return self.quantile(pct / 100.0)

    def bucket_counts(self) -> List[Tuple[int, int]]:
        """Sorted (inclusive upper bound, cumulative count) pairs."""
        out: List[Tuple[int, int]] = []
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            _lo, hi = self._bounds(index)
            out.append((hi - 1, cumulative))
        return out

    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error of this configuration."""
        return 1.0 / (2 * self.resolution)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All metrics sharing one name: a kind, help text, per-label children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}


def _label_key(labels: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name -> metric-family map with get-or-create semantics."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Optional[Dict[str, str]],
        **kwargs,
    ):
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ObservabilityError(f"invalid metric name: {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {family.kind}, "
                f"requested as {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        key = _label_key(labels)
        metric = family.children.get(key)
        if metric is None:
            metric = _KINDS[kind](**kwargs)
            family.children[key] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Dict[str, str] = None
    ) -> Counter:
        """Get or create the counter ``name`` for ``labels``."""
        return self._get_or_create(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Dict[str, str] = None
    ) -> Gauge:
        """Get or create the gauge ``name`` for ``labels``."""
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Dict[str, str] = None,
        resolution: int = 64,
    ) -> Histogram:
        """Get or create the histogram ``name`` for ``labels``."""
        return self._get_or_create(
            name, "histogram", help, labels, resolution=resolution
        )

    # -- introspection -----------------------------------------------------

    def collect(self) -> Iterator[Tuple[str, str, str, List[Tuple[Dict[str, str], object]]]]:
        """Yield ``(name, kind, help, [(labels, metric), ...])`` sorted by name."""
        for name in sorted(self._families):
            family = self._families[name]
            children = [
                (dict(key), metric)
                for key, metric in sorted(family.children.items())
            ]
            yield name, family.kind, family.help, children

    def get(self, name: str, labels: Dict[str, str] = None):
        """Existing metric for (name, labels), or None."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
