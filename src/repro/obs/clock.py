"""Clock sources for the observability subsystem.

A clock is anything with a ``now_ns() -> int`` method.  Three concrete
sources cover the repo's layers:

- :class:`WallClock` -- ``time.perf_counter_ns`` for the functional layer
  (real client/server pairs exchanging real bytes);
- :class:`SimClock` -- reads a :class:`~repro.sim.engine.Simulator`'s
  integer-nanosecond ``now``, so traces taken inside a discrete-event run
  carry simulated timestamps;
- :class:`ManualClock` -- advanced explicitly, used by analytic runners
  (e.g. Figure 8) that *compute* stage durations from cost models rather
  than measuring them.
"""

from __future__ import annotations

import time

from repro.errors import ObservabilityError

__all__ = ["Clock", "WallClock", "SimClock", "ManualClock"]


class Clock:
    """Abstract time source; subclasses implement :meth:`now_ns`."""

    def now_ns(self) -> int:
        """Current time in integer nanoseconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall-clock time (``time.perf_counter_ns``)."""

    def now_ns(self) -> int:
        return time.perf_counter_ns()


class SimClock(Clock):
    """Reads simulated time from a simulator-like object exposing ``now``."""

    def __init__(self, simulator):
        self._simulator = simulator

    def now_ns(self) -> int:
        return self._simulator.now


class ManualClock(Clock):
    """A clock that only moves when told to (analytic/model-driven runs)."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ObservabilityError(f"negative start time: {start_ns}")
        self._now = start_ns

    def now_ns(self) -> int:
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns``; returns the new time."""
        if delta_ns < 0:
            raise ObservabilityError(f"clock cannot move backwards: {delta_ns}")
        self._now += delta_ns
        return self._now
