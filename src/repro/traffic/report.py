"""Coordinated-omission-corrected reporting and the knee finder.

A :class:`TrafficReport` carries one scenario run end to end: the
scenario identity (name, version, seed -- enough to reproduce it
byte-for-byte), the offered/admitted/throttled/executed/error counts,
and the **corrected vs. uncorrected** latency distributions side by
side.  ``corrected`` charges each operation from its *intended* start
on the arrival schedule; ``uncorrected`` from the moment its connection
actually sent it -- the closed-loop driver's view.  Above saturation
the two diverge without bound; the report prints them in one table so
the omission gap is never hidden.

SLO evaluation reuses the PR 6 grammar (:mod:`repro.obs.slo`)
twice over:

- *windowed* breaches come from the live
  :class:`~repro.obs.telemetry.TelemetryPipeline` ticks during the run
  (attached by :mod:`repro.traffic.scenarios`);
- *run-level* evaluation (:meth:`TrafficReport.evaluate_slo`) folds the
  whole run's per-shard corrected recorders into one synthetic
  :class:`~repro.obs.telemetry.ClusterTelemetry` snapshot and asks a
  fresh :class:`~repro.obs.slo.SloEngine` -- this is the predicate the
  knee finder binary-searches against.

:func:`find_knee` locates the **knee**: the highest offered rate (ops/s,
integer) whose run still satisfies the SLO.  Each probe is a fresh
seeded scenario run at the candidate rate, so the result is a pure
function of ``(probe function, bounds, slo, seed)`` and therefore
seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.slo import SloBreach, SloEngine
from repro.obs.telemetry import ClusterTelemetry, ShardSample
from repro.sim.stats import LatencyRecorder

__all__ = [
    "TRAFFIC_SLO_SPEC",
    "TrafficReport",
    "KneeProbe",
    "KneeResult",
    "find_knee",
]

#: Default objective for open-loop runs: the knee is where the whole-run
#: corrected p99 crosses 5 ms or the error budget burns.  (No staleness
#: rule: run-level snapshots are synthesized from recorders, which carry
#: no replication lag -- the windowed pipeline still checks lag live.)
TRAFFIC_SLO_SPEC = "latency:p99<5ms:min=8,errors:budget=2%:burn<5"

_PCTS = (50.0, 99.0, 99.9)
_PCT_KEYS = ("p50_ns", "p99_ns", "p999_ns")


def _tail(recorder: LatencyRecorder) -> Dict[str, int]:
    """p50/p99/p999 of one recorder (zeros when empty)."""
    if recorder.is_empty:
        return {key: 0 for key in _PCT_KEYS}
    return {
        key: recorder.percentile(pct) for key, pct in zip(_PCT_KEYS, _PCTS)
    }


@dataclass
class TrafficReport:
    """Everything one scenario run produced; see the module docstring."""

    scenario: str
    version: int
    seed: int
    shards: int
    replicas: int
    rate_ops_s: float
    ops: int
    arrival_kind: str
    schedule: str
    slo_spec: str
    total_sessions: int
    tenants_spec: List[dict] = field(default_factory=list)

    offered: int = 0
    admitted: int = 0
    throttled: int = 0
    executed: int = 0
    errors: int = 0
    duration_ns: int = 0
    ticks: int = 0
    throughput_ops_s: float = 0.0

    corrected: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(bounded=True)
    )
    uncorrected: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(bounded=True)
    )
    per_shard: Dict[str, LatencyRecorder] = field(default_factory=dict)
    shard_errors: Dict[str, int] = field(default_factory=dict)
    tenant_stats: Dict[str, dict] = field(default_factory=dict)

    #: Breaches from the live windowed pipeline during the run.
    windowed_breaches: List[dict] = field(default_factory=list)
    #: Fault log + sha256 fingerprint when a schedule was armed.
    fault_log: List[str] = field(default_factory=list)
    fault_fingerprint: Optional[str] = None

    #: Near-cache / backup-offload configuration and aggregates.  The
    #: JSON section only appears when a feature was on, so reports from
    #: default runs keep their exact historical bytes.
    near_cache: bool = False
    read_offload: bool = False
    nearcache: Optional[dict] = None
    #: GET frames the shard primaries / backups actually handled --
    #: always populated (bench baselines need the primary count even
    #: with caching off), only serialized alongside ``nearcache``.
    primary_gets: int = 0
    backup_gets: int = 0

    #: Elastic-controller section, serialized only when the autoscaler
    #: was live so default reports keep their historical bytes.
    autoscale: bool = False
    autoscale_decisions: List[dict] = field(default_factory=list)
    autoscale_log: List[str] = field(default_factory=list)
    autoscale_summary: Optional[dict] = None

    # -- distributions -----------------------------------------------------

    def corrected_tail(self) -> Dict[str, int]:
        """Corrected p50/p99/p999 (ns)."""
        return _tail(self.corrected)

    def uncorrected_tail(self) -> Dict[str, int]:
        """Uncorrected p50/p99/p999 (ns)."""
        return _tail(self.uncorrected)

    def omission_gap(self) -> float:
        """corrected p99 / uncorrected p99 (1.0 when either is empty)."""
        corrected = self.corrected_tail()["p99_ns"]
        uncorrected = self.uncorrected_tail()["p99_ns"]
        if corrected == 0 or uncorrected == 0:
            return 1.0
        return corrected / uncorrected

    # -- run-level SLO -----------------------------------------------------

    def run_snapshot(self) -> ClusterTelemetry:
        """The whole run folded into one synthetic telemetry snapshot.

        Per-shard corrected recorders become
        :class:`~repro.obs.telemetry.ShardSample` aggregates; probe-only
        fields (queue depth, EPC, replication lag) are zero -- run-level
        rules about them always pass, the *windowed* pipeline checks
        them live instead.
        """
        shards: Dict[str, ShardSample] = {}
        for name in sorted(self.per_shard):
            recorder = self.per_shard[name]
            tail = _tail(recorder)
            shards[name] = ShardSample(
                shard=name,
                ops=recorder.count,
                errors=self.shard_errors.get(name, 0),
                p50_ns=tail["p50_ns"],
                p99_ns=tail["p99_ns"],
            )
        return ClusterTelemetry(
            tick=self.ticks,
            t_ns=self.duration_ns,
            window_ticks=max(1, self.ticks),
            shards=shards,
            faults={},
        )

    def evaluate_slo(self, spec: Optional[str] = None) -> List[SloBreach]:
        """Evaluate an SLO spec against the whole run; returns breaches.

        Defaults to the run's own ``slo_spec``.  This is the knee
        finder's feasibility predicate.
        """
        engine = SloEngine.from_spec(spec if spec else self.slo_spec)
        return engine.evaluate(self.run_snapshot())

    @property
    def slo_ok(self) -> bool:
        """True when the run passes its own SLO at run level."""
        return not self.evaluate_slo()

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 on SLO breach or a broken invariant.

        The invariant: corrected latency can never beat uncorrected
        (every intended start precedes or equals its send).
        """
        if self.executed and (
            self.corrected_tail()["p99_ns"]
            < self.uncorrected_tail()["p99_ns"]
        ):
            return 1
        return 0 if self.slo_ok else 1

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-shaped view; stable key order and rounding so one seed
        yields byte-identical serialized reports (the determinism test
        relies on this)."""
        out = {
            "scenario": self.scenario,
            "version": self.version,
            "seed": self.seed,
            "shards": self.shards,
            "replicas": self.replicas,
            "rate_ops_s": round(self.rate_ops_s, 6),
            "ops": self.ops,
            "arrival_kind": self.arrival_kind,
            "schedule": self.schedule,
            "slo_spec": self.slo_spec,
            "total_sessions": self.total_sessions,
            "tenants": list(self.tenants_spec),
            "counts": {
                "offered": self.offered,
                "admitted": self.admitted,
                "throttled": self.throttled,
                "executed": self.executed,
                "errors": self.errors,
            },
            "duration_ns": self.duration_ns,
            "ticks": self.ticks,
            "throughput_ops_s": round(self.throughput_ops_s, 3),
            "corrected": self.corrected_tail(),
            "uncorrected": self.uncorrected_tail(),
            "omission_gap_p99": round(self.omission_gap(), 4),
            "per_shard": {
                name: dict(
                    _tail(recorder),
                    ops=recorder.count,
                    errors=self.shard_errors.get(name, 0),
                )
                for name, recorder in sorted(self.per_shard.items())
            },
            "tenant_stats": {
                name: dict(stats)
                for name, stats in sorted(self.tenant_stats.items())
            },
            "windowed_breaches": list(self.windowed_breaches),
            "run_breaches": [b.to_dict() for b in self.evaluate_slo()],
            "fault_fingerprint": self.fault_fingerprint,
            "fault_log": list(self.fault_log),
        }
        if self.near_cache or self.read_offload:
            out["near_cache"] = self.near_cache
            out["read_offload"] = self.read_offload
            out["nearcache"] = dict(
                dict(self.nearcache or {}),
                primary_gets=self.primary_gets,
                backup_gets=self.backup_gets,
            )
        if self.autoscale:
            out["autoscale"] = {
                "enabled": True,
                "summary": dict(self.autoscale_summary or {}),
                "decisions": list(self.autoscale_decisions),
                "log": list(self.autoscale_log),
            }
        return out

    def report(self) -> str:
        """Human-readable scenario summary, corrected vs uncorrected."""
        corrected = self.corrected_tail()
        uncorrected = self.uncorrected_tail()
        lines = [
            f"Scenario {self.scenario} (v{self.version})",
            "=" * (12 + len(self.scenario) + len(str(self.version))),
            f"arrivals={self.arrival_kind} rate={self.rate_ops_s:g} ops/s "
            f"seed={self.seed} shards={self.shards} "
            f"replicas={self.replicas}",
            f"sessions={self.total_sessions:,} offered={self.offered} "
            f"throttled={self.throttled} executed={self.executed} "
            f"errors={self.errors}",
            f"duration={self.duration_ns / 1e6:.2f}ms sim "
            f"throughput={self.throughput_ops_s:,.0f} ops/s "
            f"ticks={self.ticks}",
            "",
            "latency (ns)        p50          p99         p999",
            "uncorrected  "
            + "".join(
                f"{uncorrected[k]:>13,}" for k in _PCT_KEYS
            ),
            "corrected    "
            + "".join(f"{corrected[k]:>13,}" for k in _PCT_KEYS),
            f"omission gap (p99): {self.omission_gap():.2f}x",
        ]
        if self.near_cache or self.read_offload:
            stats = self.nearcache or {}
            lines.append(
                f"near-cache: hits={stats.get('cache_hits', 0)} "
                f"misses={stats.get('cache_misses', 0)} "
                f"offload={stats.get('offload_served', 0)} "
                f"(fallbacks={stats.get('offload_fallbacks', 0)}) "
                f"primary_gets={self.primary_gets} "
                f"backup_gets={self.backup_gets}"
            )
        if self.autoscale:
            summary = self.autoscale_summary or {}
            actions = summary.get("actions", {})
            acted = (
                " ".join(
                    f"{kind}={actions[kind]}" for kind in sorted(actions)
                )
                or "none"
            )
            lines.append(
                f"autoscale: decisions={summary.get('decisions', 0)} "
                f"applied={summary.get('applied', 0)} "
                f"refused={summary.get('refused', 0)} "
                f"flapping={summary.get('flapping', 0)} "
                f"final_shards={summary.get('final_shards', self.shards)} "
                f"shard_ms={summary.get('shard_ms', 0)}"
            )
            lines.append(f"  actions: {acted}")
        if self.tenant_stats:
            lines.append("")
            lines.append("tenants:")
            for name, stats in sorted(self.tenant_stats.items()):
                lines.append(
                    f"  {name:<12} sessions={stats['sessions']:>9,} "
                    f"offered={stats['offered']:>5} "
                    f"throttled={stats['throttled']:>4} "
                    f"executed={stats['executed']:>5} "
                    f"errors={stats['errors']}"
                )
        breaches = self.evaluate_slo()
        if self.windowed_breaches or breaches:
            lines.append("")
            lines.append(
                f"SLO ({self.slo_spec}): "
                f"{len(self.windowed_breaches)} windowed breach(es), "
                f"{len(breaches)} run-level"
            )
            for breach in breaches:
                lines.append("  " + breach.describe())
        else:
            lines.append("")
            lines.append(f"SLO ({self.slo_spec}): OK")
        if self.fault_fingerprint is not None:
            lines.append(
                f"faults: {len(self.fault_log)} event(s), "
                f"fingerprint={self.fault_fingerprint[:16]}..."
            )
        return "\n".join(lines)


# -- knee finder -----------------------------------------------------------


@dataclass(frozen=True)
class KneeProbe:
    """One feasibility probe of the binary search."""

    rate_ops_s: int
    ok: bool
    corrected_p99_ns: int
    uncorrected_p99_ns: int
    throughput_ops_s: float

    def to_dict(self) -> dict:
        """JSON-shaped view of this probe."""
        return {
            "rate_ops_s": self.rate_ops_s,
            "ok": self.ok,
            "corrected_p99_ns": self.corrected_p99_ns,
            "uncorrected_p99_ns": self.uncorrected_p99_ns,
            "throughput_ops_s": round(self.throughput_ops_s, 3),
        }


@dataclass
class KneeResult:
    """Outcome of one knee search."""

    knee_ops_s: int
    slo_spec: str
    lo: int
    hi: int
    probes: List[KneeProbe] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-shaped view of the search."""
        return {
            "knee_ops_s": self.knee_ops_s,
            "slo_spec": self.slo_spec,
            "lo": self.lo,
            "hi": self.hi,
            "probes": [probe.to_dict() for probe in self.probes],
        }


def find_knee(
    probe: Callable[[int], TrafficReport],
    lo: int,
    hi: int,
    slo_spec: str = TRAFFIC_SLO_SPEC,
    tolerance: Optional[int] = None,
) -> KneeResult:
    """Binary-search the highest offered rate that satisfies ``slo_spec``.

    ``probe(rate)`` must run a fresh scenario at integer rate ``rate``
    (ops/s) and return its :class:`TrafficReport`; feasibility is the
    run-level SLO evaluation.  The search keeps the invariant *lo
    feasible, hi infeasible* and stops when the bracket is within
    ``tolerance`` (default: 5% of ``hi``, at least 1).  Returns the last
    feasible rate -- 0 when even ``lo`` breaches.
    """
    if not 0 < lo < hi:
        raise ConfigurationError(
            f"knee search needs 0 < lo < hi, got [{lo}, {hi}]"
        )
    if tolerance is None:
        tolerance = max(1, hi // 20)
    if tolerance < 1:
        raise ConfigurationError(f"tolerance must be >= 1, got {tolerance}")

    result = KneeResult(knee_ops_s=0, slo_spec=slo_spec, lo=lo, hi=hi)

    def feasible(rate: int) -> bool:
        run = probe(rate)
        ok = not run.evaluate_slo(slo_spec)
        result.probes.append(
            KneeProbe(
                rate_ops_s=rate,
                ok=ok,
                corrected_p99_ns=run.corrected_tail()["p99_ns"],
                uncorrected_p99_ns=run.uncorrected_tail()["p99_ns"],
                throughput_ops_s=run.throughput_ops_s,
            )
        )
        return ok

    if not feasible(lo):
        return result  # overloaded even at the floor: knee below lo
    if feasible(hi):
        result.knee_ops_s = hi
        return result
    while hi - lo > tolerance:
        mid = (lo + hi) // 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    result.knee_ops_s = lo
    return result
