"""The named, versioned scenario registry.

A scenario is a *complete* open-loop experiment -- arrival shape,
tenant mix, default offered rate and operation count -- reproducible
from a single seed: the arrival schedule, every tenant's key draws, the
service-time jitter and any armed fault schedule all derive their RNG
streams from it, so ``run_scenario(name, seed=S)`` twice yields
byte-identical report JSON (the determinism tests pin exactly this).

Versions matter because committed artifacts
(``BENCH_traffic.json``) reference scenarios by name: changing a
scenario's shape without bumping its ``version`` would silently
invalidate old numbers.  Bump the version whenever arrivals, mix or
defaults change.

The registry ships five scenarios:

========================  ==================================================
``steady``                Poisson at a constant rate -- the knee finder's
                          probe workload.
``diurnal``               sinusoidal day-curve (compressed to ~400 ms of
                          simulated time).
``flash-crowd``           5x ramp/hold/decay spike over a modest baseline.
``hot-key-storm``         surge window that re-skews key choice onto a few
                          hot keys (zipfian theta 0.995), concentrating
                          load on their owning shards.
``multi-tenant-contention``  three tenants -- a rate-limited bulk cohort, an
                          interactive cohort and a small zipfian analytics
                          cohort -- demonstrating token-bucket throttling
                          under contention.
========================  ==================================================

Each run wires the full stack: real attested routers over a
:class:`~repro.shard.cluster.ShardedCluster`, live
:class:`~repro.obs.telemetry.TelemetryPipeline` ticks with an attached
:class:`~repro.obs.slo.SloEngine` (windowed breaches land in the
report), and optionally a :class:`~repro.faults.engine.FaultEngine` so
chaos composes with open-loop load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.crypto.keys import KeyGenerator  # noqa: F401  (re-export surface)
from repro.errors import ConfigurationError
from repro.faults.engine import FaultEngine
from repro.faults.schedule import FaultSchedule
from repro.obs import ManualClock, ObsContext, SloEngine, TelemetryPipeline
from repro.traffic.arrivals import (
    NS_PER_MS,
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    HotKeyStormArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.traffic.engine import OpenLoopEngine
from repro.traffic.report import TRAFFIC_SLO_SPEC, TrafficReport
from repro.traffic.sessions import SessionModel, TenantSpec

__all__ = ["Scenario", "SCENARIOS", "list_scenarios", "run_scenario"]


@dataclass(frozen=True)
class Scenario:
    """One registry entry; ``arrivals``/``mix`` are seeded factories."""

    name: str
    version: int
    description: str
    arrivals: Callable[[float, int], ArrivalProcess]
    mix: Callable[[], List[TenantSpec]]
    default_rate_ops_s: float
    default_ops: int


def _fleet_mix(**overrides) -> List[TenantSpec]:
    """The single-cohort default: a million-session uniform fleet."""
    # 32 pooled connections keep per-connection utilization low enough
    # that below the knee an arrival almost never waits on its own
    # connection -- corrected and uncorrected tails then agree, which is
    # the honesty half of the coordinated-omission contract (loadknee
    # gates it at <= 1.10x at half the knee).
    spec = dict(
        name="fleet",
        sessions=1_000_000,
        keyspace=48,
        value_size=64,
        read_fraction=0.5,
        connections=32,
    )
    spec.update(overrides)
    return [TenantSpec(**spec)]


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


_register(
    Scenario(
        name="steady",
        version=1,
        description="constant-rate Poisson arrivals (knee-finder probe)",
        arrivals=lambda rate, seed: PoissonArrivals(rate, seed),
        mix=_fleet_mix,
        default_rate_ops_s=1200.0,
        default_ops=400,
    )
)

_register(
    Scenario(
        name="bursty",
        version=1,
        description="MMPP on/off bursts (3x on, 0.25x off)",
        arrivals=lambda rate, seed: OnOffArrivals(rate, seed),
        mix=_fleet_mix,
        default_rate_ops_s=900.0,
        default_ops=400,
    )
)

_register(
    Scenario(
        name="diurnal",
        version=1,
        description="sinusoidal day-curve, amplitude 0.6, 400ms period",
        arrivals=lambda rate, seed: DiurnalArrivals(
            rate, seed, amplitude=0.6, period_ms=400.0
        ),
        mix=_fleet_mix,
        default_rate_ops_s=1000.0,
        default_ops=400,
    )
)

_register(
    Scenario(
        name="flash-crowd",
        version=1,
        description="5x ramp/hold/decay spike at 120ms over the baseline",
        arrivals=lambda rate, seed: FlashCrowdArrivals(
            rate,
            seed,
            spike_at_ms=120.0,
            spike_factor=5.0,
            ramp_ms=20.0,
            hold_ms=60.0,
            decay_ms=80.0,
        ),
        mix=_fleet_mix,
        default_rate_ops_s=700.0,
        default_ops=400,
    )
)

_register(
    Scenario(
        name="hot-key-storm",
        version=1,
        description=(
            "2x surge at 100ms re-skewing keys onto 4 hot records "
            "(zipfian theta 0.995)"
        ),
        arrivals=lambda rate, seed: HotKeyStormArrivals(
            rate,
            seed,
            storm_at_ms=100.0,
            storm_ms=150.0,
            surge_factor=2.0,
            storm_theta=0.995,
            storm_keys=4,
        ),
        mix=lambda: _fleet_mix(distribution="zipfian", theta=0.9),
        default_rate_ops_s=900.0,
        default_ops=400,
    )
)

_register(
    Scenario(
        name="multi-tenant-contention",
        version=1,
        description=(
            "rate-limited bulk cohort vs interactive + analytics cohorts"
        ),
        arrivals=lambda rate, seed: PoissonArrivals(rate, seed),
        mix=lambda: [
            TenantSpec(
                name="bulk",
                weight=2.0,
                sessions=2_000_000,
                keyspace=48,
                value_size=96,
                read_fraction=0.2,
                rate_limit_ops_s=400.0,
                burst=20.0,
                connections=8,
            ),
            TenantSpec(
                name="interactive",
                weight=1.0,
                sessions=500_000,
                keyspace=32,
                value_size=48,
                read_fraction=0.8,
                connections=12,
            ),
            TenantSpec(
                name="analytics",
                weight=0.5,
                sessions=50_000,
                keyspace=64,
                value_size=64,
                read_fraction=0.95,
                distribution="zipfian",
                theta=0.99,
                connections=4,
            ),
        ],
        default_rate_ops_s=1500.0,
        default_ops=500,
    )
)


def list_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def run_scenario(
    name: str,
    seed: int = 0,
    shards: int = 2,
    replicas: int = 0,
    ack_mode: str = "sync",
    rate: Optional[float] = None,
    ops: Optional[int] = None,
    schedule: str = "",
    slo: Optional[str] = None,
    tick_every_ms: float = 5.0,
    window_ticks: int = 3,
    ecall_batch: int = 0,
    near_cache: bool = False,
    read_offload: bool = False,
    cache_entries: int = 256,
    cache_lease_ms: float = 25.0,
    autoscale: bool = False,
    autoscale_policy: Optional[str] = None,
    autoscale_max_shards: int = 4,
) -> TrafficReport:
    """Run one registered scenario end to end; returns its report.

    ``rate``/``ops`` override the scenario defaults (the knee finder
    probes ``steady`` this way); ``schedule`` arms a
    :class:`~repro.faults.engine.FaultEngine` with ``kind:rate`` syntax
    *after* the preload, so warm-up writes are fault-free and the fault
    log fingerprints deterministically.  ``ecall_batch`` routes every
    shard server through the batched request pipeline
    (``docs/BATCHING.md``); 0 keeps the serial path and K=1 must produce
    a byte-identical report.  ``near_cache``/``read_offload`` enable the
    client-verified near-cache and the freshness-token backup reads
    (``docs/CACHING.md``) on every pooled connection; both default off
    and the default report stays byte-identical to before they existed.
    ``autoscale`` puts the elastic controller
    (``docs/AUTOSCALING.md``) in the loop: every telemetry window feeds
    :class:`~repro.autoscale.AutoScaler`, which may join/leave shards
    (``shards`` then only sets the *starting* topology, bounded above
    by ``autoscale_max_shards``) and grow/shrink replica groups under
    ``autoscale_policy`` (defaults to
    :data:`~repro.autoscale.DEFAULT_POLICY_SPEC`); the full decision
    log lands in the report and a flight recorder is attached so the
    topology history is reconstructable offline.  Raises
    :class:`~repro.errors.ConfigurationError` for unknown names or bad
    parameters.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r} (have {list_scenarios()})"
        )
    if not 1 <= shards <= 64:
        raise ConfigurationError(f"shards must be in [1, 64], got {shards}")
    if tick_every_ms <= 0:
        raise ConfigurationError(
            f"tick_every_ms must be positive, got {tick_every_ms}"
        )
    rate = rate if rate is not None else scenario.default_rate_ops_s
    ops = ops if ops is not None else scenario.default_ops
    if ops < 1:
        raise ConfigurationError(f"ops must be >= 1, got {ops}")
    slo_spec = slo if slo else TRAFFIC_SLO_SPEC

    from repro.core.server import ServerConfig
    from repro.shard.cluster import ShardedCluster

    if ecall_batch < 0:
        raise ConfigurationError(
            f"ecall_batch must be >= 0, got {ecall_batch}"
        )
    clock = ManualClock()
    obs = ObsContext.create(clock=clock)
    if autoscale:
        # Attach the recorder *before* the cluster exists so the epoch-1
        # install and every autoscaler decision land in the event ring:
        # the offline-reconstruction contract for elastic runs.
        from repro.obs import FlightRecorder

        obs.attach_flight(FlightRecorder())
    cluster = ShardedCluster(
        shards=shards,
        seed=seed,
        obs=obs,
        replicas=replicas,
        ack_mode=ack_mode,
        config=(
            ServerConfig(ecall_batch=ecall_batch) if ecall_batch else None
        ),
    )
    if cache_lease_ms <= 0:
        raise ConfigurationError(
            f"cache_lease_ms must be positive, got {cache_lease_ms}"
        )
    mix = scenario.mix()
    model = SessionModel(
        cluster,
        mix,
        seed=seed,
        near_cache=near_cache,
        read_offload=read_offload,
        cache_entries=cache_entries,
        cache_lease_ns=int(cache_lease_ms * NS_PER_MS),
    )
    model.preload()  # before hooks/faults: warm-up is free and clean

    # The engine feeds the pipeline corrected latencies itself, so the
    # pipeline is deliberately NOT attached to the obs context -- the
    # router's own wall-clock observation path stays dormant.
    slo_engine = SloEngine.from_spec(slo_spec)
    pipeline = TelemetryPipeline(
        clock=clock, window_ticks=window_ticks, registry=obs.registry
    )
    pipeline.attach_cluster(cluster)
    pipeline.attach_slo(slo_engine)

    faults: Optional[FaultEngine] = None
    if schedule:
        faults = FaultEngine(FaultSchedule.parse(schedule), seed, obs=obs)
        faults.install(
            fabrics=[cluster.server(n).fabric for n in cluster.shards],
            clients=model.all_sessions(),
        )

    process = scenario.arrivals(rate, seed)
    engine = OpenLoopEngine(
        model,
        process,
        clock,
        seed=seed,
        pipeline=pipeline,
        tick_every_ns=int(tick_every_ms * NS_PER_MS),
    )

    controller = None
    if autoscale:
        from repro.autoscale import AutoScaler, StabilityGuard

        guard = StabilityGuard(
            min_shards=1,
            max_shards=autoscale_max_shards,
            min_replicas=replicas,
            max_replicas=replicas + 1,
        )
        controller = AutoScaler(
            cluster,
            policy=autoscale_policy,
            guard=guard,
            obs=obs,
            # Members spawned mid-run must get the service-cost hook
            # too, or their frames would execute for free.
            on_topology_change=engine.install_service_model,
        )
        pipeline.attach_controller(controller)

    result = engine.run(ops)

    if faults is not None:
        faults.uninstall()

    report = TrafficReport(
        scenario=scenario.name,
        version=scenario.version,
        seed=seed,
        shards=shards,
        replicas=replicas,
        rate_ops_s=rate,
        ops=ops,
        arrival_kind=process.kind,
        schedule=schedule,
        slo_spec=slo_spec,
        total_sessions=model.total_sessions,
        tenants_spec=[spec.to_dict() for spec in mix],
        offered=result.offered,
        admitted=result.admitted,
        throttled=result.throttled,
        executed=result.executed,
        errors=result.errors,
        duration_ns=result.duration_ns,
        ticks=result.ticks,
        throughput_ops_s=result.throughput_ops_s,
        corrected=result.corrected,
        uncorrected=result.uncorrected,
        per_shard=result.per_shard,
        shard_errors=result.shard_errors,
        tenant_stats=model.tenant_stats(),
        windowed_breaches=[b.to_dict() for b in slo_engine.breaches],
    )
    if faults is not None:
        report.fault_log = list(faults.log)
        report.fault_fingerprint = faults.fingerprint()
    report.near_cache = near_cache
    report.read_offload = read_offload
    report.nearcache = model.nearcache_stats()
    # Which members actually handled GET frames: the primary-shed
    # measurement (benchmarks compare these across configurations).
    report.primary_gets = sum(
        cluster.server(name).stats.gets for name in cluster.shards
    )
    report.backup_gets = sum(
        backup.stats.gets
        for name in cluster.shards
        for backup in cluster.group(name).backups
    )
    report.autoscale = autoscale
    if controller is not None:
        report.autoscale_decisions = [
            d.to_dict() for d in controller.decisions
        ]
        report.autoscale_log = controller.log_lines()
        report.autoscale_summary = controller.summary(result.duration_ns)
    return report
