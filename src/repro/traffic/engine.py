"""The open-loop execution engine: intended time vs. the time you got.

The engine replays an arrival schedule (:mod:`repro.traffic.arrivals`)
against a live :class:`~repro.shard.cluster.ShardedCluster` on the
:class:`~repro.obs.ManualClock`, running every operation through a real
attested router (MACs verified, replay counters advanced, faults and
failovers live) while *time* is modelled deterministically:

- each handled server frame accrues a seeded service cost into an
  accumulator via the server's ``service_hook`` seam (it does **not**
  advance the global clock, so distinct shards overlap in time instead
  of serializing behind one another -- retries under a
  :class:`~repro.faults.engine.FaultEngine` naturally accrue extra
  frames and therefore extra service time);
- a **connection** is busy until its previous reply lands: an arrival
  whose intended start falls inside that window is *delayed at the
  client*, exactly the queueing a closed-loop driver silently absorbs;
- a **shard** serves one request at a time: requests from different
  connections queue at the owning shard, visible to both metrics.

Per operation, with ``intended`` from the schedule::

    send       = max(intended, connection_free)
    start      = max(send, shard_free[owner])
    completion = start + accrued_service
    uncorrected = completion - send        # what a closed-loop tool sees
    corrected   = completion - intended    # what the user experienced

The difference is precisely the coordinated-omission component: time
the request spent waiting for its own connection before it was ever
sent.  Below saturation connections are mostly idle and the two agree;
past the knee the backlog grows without bound and only ``corrected``
keeps telling the truth.

Event order is a heap on ``(send, seq)``; since each connection's next
send is at least its predecessor's completion, popped send times are
non-decreasing and the manual clock never moves backwards.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.stats import LatencyRecorder
from repro.traffic.arrivals import NS_PER_MS, ArrivalProcess
from repro.traffic.sessions import SessionModel

__all__ = ["OpenLoopResult", "OpenLoopEngine"]

#: Default modelled service cost per handled frame (ns).
DEFAULT_BASE_SERVICE_NS = 400_000
DEFAULT_JITTER_SERVICE_NS = 200_000
#: Fixed wire/verify overhead charged per operation on top of frames.
DEFAULT_WIRE_NS = 20_000
#: Modelled cost of a validated near-cache hit (client-local: a digest
#: lookup, a checksum and a MAC compare -- no wire, no shard queue).
DEFAULT_CACHE_HIT_NS = 2_000


@dataclass
class OpenLoopResult:
    """Raw measurements of one engine run (no scenario metadata)."""

    offered: int = 0
    admitted: int = 0
    throttled: int = 0
    executed: int = 0
    errors: int = 0
    duration_ns: int = 0
    ticks: int = 0
    #: Latency from actual send time (the closed-loop illusion).
    uncorrected: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(bounded=True)
    )
    #: Latency from intended start time (coordinated-omission corrected).
    corrected: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder(bounded=True)
    )
    #: Corrected latency per owning shard (feeds the SLO evaluation).
    per_shard: Dict[str, LatencyRecorder] = field(default_factory=dict)
    #: Errors per owning shard.
    shard_errors: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_ops_s(self) -> float:
        """Completed operations per second of simulated time."""
        if self.executed == 0 or self.duration_ns <= 0:
            return 0.0
        return self.executed / (self.duration_ns / 1e9)


class OpenLoopEngine:
    """Drives one arrival schedule through a session model; see module doc."""

    def __init__(
        self,
        model: SessionModel,
        process: ArrivalProcess,
        clock,
        seed: int = 0,
        pipeline=None,
        tick_every_ns: int = 5 * NS_PER_MS,
        base_service_ns: int = DEFAULT_BASE_SERVICE_NS,
        jitter_service_ns: int = DEFAULT_JITTER_SERVICE_NS,
        wire_ns: int = DEFAULT_WIRE_NS,
        cache_hit_ns: int = DEFAULT_CACHE_HIT_NS,
    ):
        if tick_every_ns < 1:
            raise ConfigurationError(
                f"tick_every_ns must be >= 1, got {tick_every_ns}"
            )
        if base_service_ns < 0 or jitter_service_ns < 1 or wire_ns < 0:
            raise ConfigurationError("bad service model parameters")
        if cache_hit_ns < 0:
            raise ConfigurationError(
                f"cache_hit_ns must be >= 0, got {cache_hit_ns}"
            )
        self.model = model
        self.process = process
        self.clock = clock
        self.pipeline = pipeline
        self.tick_every_ns = tick_every_ns
        self.base_service_ns = base_service_ns
        self.jitter_service_ns = jitter_service_ns
        self.wire_ns = wire_ns
        self.cache_hit_ns = cache_hit_ns
        self._service_rng = random.Random(seed ^ 0x5E2F1CE)
        self._accum_ns = 0
        self._hooked = False

    # -- service model -----------------------------------------------------

    def install_service_model(self) -> None:
        """Install accruing service hooks on every shard-group member.

        Call *after* any preload: the warm-up writes then cost nothing,
        so the measured window starts from a clean accumulator.  Every
        member (primaries and replicas) accrues into the same counter --
        a sync-replicated put pays for its backup frames too.
        """
        def accrue() -> None:
            self._accum_ns += self.base_service_ns + self._service_rng.randrange(
                self.jitter_service_ns
            )

        cluster = self.model.cluster
        for name in cluster.shards:
            for member in cluster.group(name).members():
                member.service_hook = accrue
        self._hooked = True

    # -- run ---------------------------------------------------------------

    def run(self, max_ops: int) -> OpenLoopResult:
        """Replay ``max_ops`` arrivals; returns the raw measurements."""
        if not self._hooked:
            self.install_service_model()
        model = self.model
        process = self.process
        cluster = model.cluster
        result = OpenLoopResult()
        t0 = self.clock.now_ns()

        # Phase 1 -- admission, in intended-start order.  Token buckets
        # and the draw RNG see monotone timestamps; throttled arrivals
        # are counted and dropped before they cost anything.
        storm_theta = getattr(process, "storm_theta", 0.99)
        storm_keys = getattr(process, "storm_keys", 4)
        queues: Dict[Tuple[int, int], Deque[tuple]] = {}
        for intended in process.schedule(max_ops):
            result.offered += 1
            drawn = model.draw(
                intended,
                storm=process.in_storm(intended),
                storm_theta=storm_theta,
                storm_keys=storm_keys,
            )
            if drawn is None:
                result.throttled += 1
                continue
            result.admitted += 1
            tenant, conn_key, op, key, value = drawn
            queues.setdefault(conn_key, deque()).append(
                (intended, tenant, op, key, value)
            )

        # Phase 2 -- event-driven replay.  One heap entry per connection
        # (its next operation's send time); each pop executes one real
        # operation and re-arms the connection.
        heap: List[Tuple[int, int, Tuple[int, int]]] = []
        seq = 0
        for conn_key, queue in sorted(queues.items()):
            intended = queue[0][0]
            heapq.heappush(heap, (intended, seq, conn_key))
            seq += 1
        conn_free: Dict[Tuple[int, int], int] = {}
        shard_free: Dict[str, int] = {}
        next_tick = self.tick_every_ns
        last_completion = 0

        while heap:
            send, _seq, conn_key = heapq.heappop(heap)
            # Publish telemetry windows at exact boundaries crossed
            # before this send.
            while self.pipeline is not None and next_tick <= send:
                self._advance_to(t0 + next_tick)
                self.pipeline.tick()
                result.ticks += 1
                next_tick += self.tick_every_ns
            self._advance_to(t0 + send)

            queue = queues[conn_key]
            intended, tenant, op, key, value = queue.popleft()
            shard = cluster.owner(key)
            conn = model.connections[conn_key]

            self._accum_ns = 0
            ok = True
            try:
                if op == "get":
                    conn.get(key)
                else:
                    conn.put(key, value)
            except Exception:
                ok = False
                result.errors += 1
                tenant.errors += 1
                result.shard_errors[shard] = (
                    result.shard_errors.get(shard, 0) + 1
                )
            # Time modelling follows where the router actually served
            # the read from.  A near-cache hit never leaves the client:
            # no shard queueing, a fixed local cost.  A backup-served
            # read queues on the shard's *backup lane* -- its service
            # frames accrued on the backup's hook -- leaving the primary
            # free for writes.  Everything else (including all writes
            # and all errors) queues on the primary exactly as before.
            path = "primary"
            if ok and op == "get":
                path = getattr(conn, "last_read_path", "primary")
            if path == "cache":
                start = send
                service = self.cache_hit_ns
                completion = start + service
            else:
                lane = shard if path != "backup" else f"{shard}@backup"
                start = max(send, shard_free.get(lane, 0))
                service = self._accum_ns + self.wire_ns
                completion = start + service
                shard_free[lane] = completion
            conn_free[conn_key] = completion
            last_completion = max(last_completion, completion)

            uncorrected = completion - send
            corrected = completion - intended
            result.executed += 1
            tenant.executed += 1
            result.uncorrected.record(uncorrected)
            result.corrected.record(corrected)
            tenant.corrected.record(corrected)
            recorder = result.per_shard.get(shard)
            if recorder is None:
                recorder = LatencyRecorder(bounded=True)
                result.per_shard[shard] = recorder
            recorder.record(corrected)
            if self.pipeline is not None:
                self.pipeline.observe(shard, op, corrected, ok=ok)

            if queue:
                # The connection is serial: its next send waits for this
                # completion (>= the current send, keeping the heap and
                # the clock monotone).
                next_send = max(queue[0][0], completion)
                heapq.heappush(heap, (next_send, seq, conn_key))
                seq += 1

        result.duration_ns = last_completion
        # Flush the final partial window so short runs still publish.
        if self.pipeline is not None:
            self._advance_to(t0 + max(last_completion, next_tick))
            self.pipeline.tick()
            result.ticks += 1
        return result

    def _advance_to(self, target_ns: int) -> None:
        now = self.clock.now_ns()
        if target_ns > now:
            self.clock.advance(target_ns - now)
