"""Arrival processes: *when requests want to start*, independent of replies.

Closed-loop drivers (the YCSB :class:`~repro.ycsb.driver.WorkloadDriver`)
let the system set the pace: a slow reply delays the next request, so
queueing collapse is invisible and tail latency is systematically
under-reported (coordinated omission).  An *open-loop* run fixes the
offered rate instead: every operation carries an **intended start
timestamp** drawn here, on the run's
:class:`~repro.obs.clock.ManualClock` timeline, and the engine charges
latency from that intended start no matter how far the system fell
behind.

Every process is a pure function of ``(parameters, seed)``: the
timestamps come from one ``random.Random(seed)`` via Lewis-Shedler
thinning against the process's instantaneous intensity ``rate_at(t)``,
so two runs with one seed produce identical schedules.  Rates are in
operations per second of *simulated* time; timestamps are integer
nanoseconds.

Five shapes cover the scenario suite (:mod:`repro.traffic.scenarios`):

- :class:`PoissonArrivals` -- memoryless steady load;
- :class:`OnOffArrivals` -- bursty MMPP-style on/off modulation with
  seeded exponential state holding times;
- :class:`DiurnalArrivals` -- a sinusoidal day-curve around the mean;
- :class:`FlashCrowdArrivals` -- ramp/hold/decay rate spike at a fixed
  offset (the thundering herd);
- :class:`HotKeyStormArrivals` -- a surge window that also *re-skews
  key choice*: while :meth:`~ArrivalProcess.in_storm` is true the
  session model overrides its per-tenant chooser with a high-theta
  zipfian over a handful of storm keys.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "NS_PER_S",
    "NS_PER_MS",
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "HotKeyStormArrivals",
]

NS_PER_S = 1_000_000_000
NS_PER_MS = 1_000_000


class ArrivalProcess:
    """Base class: a seeded, possibly non-homogeneous Poisson process.

    Subclasses shape the intensity by overriding :meth:`rate_at` (and
    :meth:`peak_rate`, the thinning envelope -- it must dominate
    ``rate_at`` everywhere or the schedule silently under-delivers).
    """

    kind = "base"

    def __init__(self, rate_ops_s: float, seed: int = 0):
        if rate_ops_s <= 0:
            raise ConfigurationError(
                f"arrival rate must be positive, got {rate_ops_s}"
            )
        self.rate = float(rate_ops_s)
        self.seed = seed

    # -- intensity ---------------------------------------------------------

    def peak_rate(self) -> float:
        """Upper bound on :meth:`rate_at` (the thinning envelope)."""
        return self.rate

    def rate_at(self, t_ns: int) -> float:
        """Instantaneous intensity (ops/s) at simulated time ``t_ns``."""
        return self.rate

    # -- storm interface (hot-key scenarios) -------------------------------

    def in_storm(self, t_ns: int) -> bool:
        """True while the key-skew override is active (default: never)."""
        return False

    # -- schedule generation -----------------------------------------------

    def schedule(self, max_ops: int) -> List[int]:
        """The first ``max_ops`` intended-start timestamps, in ns.

        Deterministic under ``seed``; strictly increasing (candidate
        gaps are at least 1 ns).
        """
        if max_ops < 1:
            raise ConfigurationError(f"max_ops must be >= 1, got {max_ops}")
        rng = random.Random(self.seed)
        envelope = self.peak_rate()
        mean_gap_ns = NS_PER_S / envelope
        out: List[int] = []
        t = 0.0
        while len(out) < max_ops:
            t += max(1.0, rng.expovariate(1.0) * mean_gap_ns)
            if rng.random() * envelope <= self.rate_at(int(t)):
                out.append(int(t))
        return out

    def describe(self) -> str:
        """One-line human summary."""
        return f"{self.kind} arrivals at {self.rate:g} ops/s"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.rate:g}, seed={self.seed})"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant rate (steady open-loop load)."""

    kind = "poisson"


class OnOffArrivals(ArrivalProcess):
    """Bursty MMPP-style arrivals: on/off states modulate the rate.

    State holding times are exponential with the given means, drawn from
    a dedicated seeded stream so the state timeline is independent of
    the thinning draws.  ``on_factor``/``off_factor`` scale the base
    rate inside each state; the long-run mean rate is the duty-weighted
    mixture, not ``rate`` itself.
    """

    kind = "on-off"

    def __init__(
        self,
        rate_ops_s: float,
        seed: int = 0,
        on_factor: float = 3.0,
        off_factor: float = 0.25,
        mean_on_ms: float = 40.0,
        mean_off_ms: float = 80.0,
    ):
        super().__init__(rate_ops_s, seed)
        if on_factor <= 0 or off_factor < 0:
            raise ConfigurationError(
                f"bad on/off factors: {on_factor}/{off_factor}"
            )
        if mean_on_ms <= 0 or mean_off_ms <= 0:
            raise ConfigurationError(
                f"state holding times must be positive: "
                f"{mean_on_ms}/{mean_off_ms}"
            )
        self.on_factor = on_factor
        self.off_factor = off_factor
        self.mean_on_ns = mean_on_ms * NS_PER_MS
        self.mean_off_ns = mean_off_ms * NS_PER_MS
        self._state_rng = random.Random(seed ^ 0x0F0F_5EED)
        #: Lazily extended ``(end_ns, on?)`` segments covering [0, ...).
        self._segments: List[Tuple[int, bool]] = []

    def peak_rate(self) -> float:
        return self.rate * max(self.on_factor, self.off_factor)

    def _extend_to(self, t_ns: int) -> None:
        end = self._segments[-1][0] if self._segments else 0
        on = not self._segments[-1][1] if self._segments else True
        while end <= t_ns:
            mean = self.mean_on_ns if on else self.mean_off_ns
            end += max(1, int(self._state_rng.expovariate(1.0) * mean))
            self._segments.append((end, on))
            on = not on
        # Bound memory: only the tail of the timeline is ever re-read,
        # because schedule() queries monotonically increasing times.
        if len(self._segments) > 64:
            del self._segments[:-8]

    def rate_at(self, t_ns: int) -> float:
        self._extend_to(t_ns)
        for end, on in self._segments:
            if t_ns < end:
                return self.rate * (self.on_factor if on else self.off_factor)
        return self.rate * self.on_factor  # unreachable; defensive


class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day-curve: mean ``rate`` modulated by ``amplitude``.

    ``period_ms`` is the full cycle length (a compressed "day" on the
    simulated clock); the curve starts at the mean heading into the
    peak.
    """

    kind = "diurnal"

    def __init__(
        self,
        rate_ops_s: float,
        seed: int = 0,
        amplitude: float = 0.6,
        period_ms: float = 400.0,
    ):
        super().__init__(rate_ops_s, seed)
        if not 0 <= amplitude < 1:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {amplitude}"
            )
        if period_ms <= 0:
            raise ConfigurationError(
                f"period must be positive, got {period_ms}"
            )
        self.amplitude = amplitude
        self.period_ns = period_ms * NS_PER_MS

    def peak_rate(self) -> float:
        return self.rate * (1.0 + self.amplitude)

    def rate_at(self, t_ns: int) -> float:
        phase = 2.0 * math.pi * (t_ns / self.period_ns)
        return self.rate * (1.0 + self.amplitude * math.sin(phase))


class FlashCrowdArrivals(ArrivalProcess):
    """Baseline load with a ramp/hold/decay rate spike (flash crowd)."""

    kind = "flash-crowd"

    def __init__(
        self,
        rate_ops_s: float,
        seed: int = 0,
        spike_at_ms: float = 120.0,
        spike_factor: float = 5.0,
        ramp_ms: float = 20.0,
        hold_ms: float = 60.0,
        decay_ms: float = 80.0,
    ):
        super().__init__(rate_ops_s, seed)
        if spike_factor < 1.0:
            raise ConfigurationError(
                f"spike_factor must be >= 1, got {spike_factor}"
            )
        if min(spike_at_ms, ramp_ms, hold_ms, decay_ms) < 0:
            raise ConfigurationError("spike geometry must be non-negative")
        self.spike_factor = spike_factor
        self.spike_at_ns = spike_at_ms * NS_PER_MS
        self.ramp_ns = ramp_ms * NS_PER_MS
        self.hold_ns = hold_ms * NS_PER_MS
        self.decay_ns = decay_ms * NS_PER_MS

    def peak_rate(self) -> float:
        return self.rate * self.spike_factor

    def rate_at(self, t_ns: int) -> float:
        t = t_ns - self.spike_at_ns
        boost = self.spike_factor - 1.0
        if t < 0:
            factor = 1.0
        elif t < self.ramp_ns:
            factor = 1.0 + boost * (t / self.ramp_ns)
        elif t < self.ramp_ns + self.hold_ns:
            factor = self.spike_factor
        elif t < self.ramp_ns + self.hold_ns + self.decay_ns:
            into = t - self.ramp_ns - self.hold_ns
            factor = self.spike_factor - boost * (into / self.decay_ns)
        else:
            factor = 1.0
        return self.rate * factor


class HotKeyStormArrivals(ArrivalProcess):
    """A surge window that also re-skews key popularity.

    During ``[storm_at, storm_at + storm_ms)`` the rate is multiplied by
    ``surge_factor`` and :meth:`in_storm` turns true -- the session
    model (:mod:`repro.traffic.sessions`) then overrides each tenant's
    key chooser with a theta-``storm_theta`` zipfian over the first
    ``storm_keys`` keys of its keyspace, concentrating load on whichever
    shards own them.
    """

    kind = "hot-key-storm"

    def __init__(
        self,
        rate_ops_s: float,
        seed: int = 0,
        storm_at_ms: float = 100.0,
        storm_ms: float = 150.0,
        surge_factor: float = 2.0,
        storm_theta: float = 0.995,
        storm_keys: int = 4,
    ):
        super().__init__(rate_ops_s, seed)
        if surge_factor < 1.0:
            raise ConfigurationError(
                f"surge_factor must be >= 1, got {surge_factor}"
            )
        if not 0 < storm_theta < 1:
            raise ConfigurationError(
                f"storm_theta must be in (0, 1), got {storm_theta}"
            )
        if storm_keys < 1:
            raise ConfigurationError(
                f"storm_keys must be >= 1, got {storm_keys}"
            )
        self.storm_at_ns = storm_at_ms * NS_PER_MS
        self.storm_end_ns = self.storm_at_ns + storm_ms * NS_PER_MS
        self.surge_factor = surge_factor
        self.storm_theta = storm_theta
        self.storm_keys = storm_keys

    def peak_rate(self) -> float:
        return self.rate * self.surge_factor

    def rate_at(self, t_ns: int) -> float:
        if self.in_storm(t_ns):
            return self.rate * self.surge_factor
        return self.rate

    def in_storm(self, t_ns: int) -> bool:
        return self.storm_at_ns <= t_ns < self.storm_end_ns
