"""Open-loop traffic generation with coordinated-omission-corrected reporting.

The package models *offered load* rather than closed-loop request/reply
cycles: arrival processes (:mod:`~repro.traffic.arrivals`) fix when
requests want to start, a bounded-memory session model
(:mod:`~repro.traffic.sessions`) maps millions of logical users onto
real attested connections, the engine (:mod:`~repro.traffic.engine`)
replays the schedule deterministically, and the report
(:mod:`~repro.traffic.report`) shows corrected vs. uncorrected tails
side by side plus the SLO-bounded throughput knee.  Named scenarios
live in :mod:`~repro.traffic.scenarios`; ``python -m repro.cli
traffic`` runs them and ``docs/TRAFFIC.md`` explains the methodology.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    HotKeyStormArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.traffic.engine import OpenLoopEngine, OpenLoopResult
from repro.traffic.report import (
    TRAFFIC_SLO_SPEC,
    KneeProbe,
    KneeResult,
    TrafficReport,
    find_knee,
)
from repro.traffic.scenarios import (
    SCENARIOS,
    Scenario,
    list_scenarios,
    run_scenario,
)
from repro.traffic.sessions import SessionModel, TenantSpec, TokenBucket

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "HotKeyStormArrivals",
    "OpenLoopEngine",
    "OpenLoopResult",
    "TRAFFIC_SLO_SPEC",
    "TrafficReport",
    "KneeProbe",
    "KneeResult",
    "find_knee",
    "Scenario",
    "SCENARIOS",
    "list_scenarios",
    "run_scenario",
    "SessionModel",
    "TenantSpec",
    "TokenBucket",
]
