"""The session model: millions of users in bounded memory.

A real deployment has far more client *sessions* than a simulation can
afford live connections: the paper's client-centric design pushes
per-session state (replay counters, MAC keys) to the clients, so the
store itself never sees more than the attested connections.  We model
that the same way.  Each :class:`TenantSpec` declares a **cohort** of
``sessions`` logical users; the cohort keeps O(1) shared state (a key
chooser, a token bucket, counters, one bounded
:class:`~repro.sim.stats.LatencyRecorder`) and multiplexes its traffic
over a small pool of *real* attested
:class:`~repro.shard.router.ShardedClient` connections.  A tenant with
``sessions=2_000_000`` costs the same memory as one with 200 -- the
session id is drawn per arrival and only used to pick the connection
and to report population, never materialized.

Determinism: connection client-ids are assigned arithmetically (never
from the process-global :func:`~repro.core.client.allocate_client_id`
counter), every chooser and the draw stream are seeded from the run
seed, so one seed reproduces the exact operation sequence.

Token buckets enforce per-tenant rate limits *at intended-start time*:
an arrival that finds its tenant's bucket empty is **throttled** --
counted, never sent -- which is how a noisy tenant is kept from
starving the others in the multi-tenant-contention scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.keys import KeyGenerator
from repro.errors import ConfigurationError
from repro.sim.stats import LatencyRecorder
from repro.traffic.arrivals import NS_PER_S
from repro.ycsb.generator import (
    KeyChooser,
    UniformChooser,
    ZipfianChooser,
    make_key,
    make_value,
)

__all__ = ["TokenBucket", "TenantSpec", "TenantState", "SessionModel"]

#: Keyspace stride between tenants: tenant i owns record indices
#: ``[(i + 1) * stride, (i + 1) * stride + keyspace)``, so tenants never
#: collide on keys and per-tenant keyspaces stay recognisable in dumps.
_TENANT_KEY_STRIDE = 1_000_000

#: Client-id block per tenant (connection k of tenant i gets
#: ``(i + 1) * stride + k``) -- explicit ids keep reruns in one process
#: byte-identical, unlike the process-global allocator.
_TENANT_CLIENT_STRIDE = 1_000


class TokenBucket:
    """A token bucket on the simulated clock: ``rate`` tokens/s, burst cap.

    ``allow(t_ns)`` must be called with non-decreasing timestamps (the
    engine drains arrivals in intended-start order).
    """

    def __init__(self, rate_ops_s: float, burst: float):
        if rate_ops_s <= 0:
            raise ConfigurationError(
                f"token bucket rate must be positive, got {rate_ops_s}"
            )
        if burst < 1:
            raise ConfigurationError(
                f"token bucket burst must be >= 1, got {burst}"
            )
        self.rate = float(rate_ops_s)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_ns = 0

    def allow(self, t_ns: int) -> bool:
        """Spend one token at time ``t_ns``; False means throttled."""
        if t_ns < self._last_ns:
            raise ConfigurationError(
                "token bucket queried with a time that moved backwards "
                f"({t_ns} < {self._last_ns})"
            )
        self._tokens = min(
            self.burst,
            self._tokens + (t_ns - self._last_ns) * self.rate / NS_PER_S,
        )
        self._last_ns = t_ns
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantSpec:
    """One tenant cohort in the traffic mix.

    ``sessions`` is the logical population (may be millions);
    ``connections`` is the pool of real attested routers it multiplexes
    over.  ``rate_limit_ops_s`` of ``None`` disables admission control
    for the tenant.
    """

    name: str
    weight: float = 1.0
    sessions: int = 1_000_000
    keyspace: int = 64
    value_size: int = 64
    read_fraction: float = 0.5
    distribution: str = "uniform"
    theta: float = 0.99
    rate_limit_ops_s: Optional[float] = None
    burst: float = 16.0
    connections: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant {self.name}: weight must be positive"
            )
        if self.sessions < 1:
            raise ConfigurationError(
                f"tenant {self.name}: sessions must be >= 1"
            )
        if not 1 <= self.keyspace <= _TENANT_KEY_STRIDE:
            raise ConfigurationError(
                f"tenant {self.name}: keyspace must be in "
                f"[1, {_TENANT_KEY_STRIDE}]"
            )
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError(
                f"tenant {self.name}: read_fraction must be in [0, 1]"
            )
        if self.distribution not in ("uniform", "zipfian"):
            raise ConfigurationError(
                f"tenant {self.name}: unknown distribution "
                f"{self.distribution!r} (uniform|zipfian)"
            )
        if not 1 <= self.connections <= _TENANT_CLIENT_STRIDE:
            raise ConfigurationError(
                f"tenant {self.name}: connections must be in "
                f"[1, {_TENANT_CLIENT_STRIDE}]"
            )

    def to_dict(self) -> dict:
        """JSON-shaped view for scenario reports."""
        return {
            "name": self.name,
            "weight": self.weight,
            "sessions": self.sessions,
            "keyspace": self.keyspace,
            "value_size": self.value_size,
            "read_fraction": self.read_fraction,
            "distribution": self.distribution,
            "theta": self.theta,
            "rate_limit_ops_s": self.rate_limit_ops_s,
            "burst": self.burst,
            "connections": self.connections,
        }


class TenantState:
    """Runtime cohort state for one tenant (bounded, population-free)."""

    def __init__(self, index: int, spec: TenantSpec, seed: int):
        self.index = index
        self.spec = spec
        self.base_index = (index + 1) * _TENANT_KEY_STRIDE
        chooser_seed = seed ^ (0xA11CE << 4) ^ index
        if spec.distribution == "zipfian":
            self.chooser: KeyChooser = ZipfianChooser(
                spec.keyspace, chooser_seed, spec.theta
            )
        else:
            self.chooser = UniformChooser(spec.keyspace, chooser_seed)
        #: Lazily built hot-key chooser for storm windows.
        self._storm_chooser: Optional[ZipfianChooser] = None
        self._storm_seed = seed ^ (0x5708B << 4) ^ index
        self.bucket: Optional[TokenBucket] = None
        if spec.rate_limit_ops_s is not None:
            self.bucket = TokenBucket(spec.rate_limit_ops_s, spec.burst)
        #: Monotone per-record versions so repeated puts store new values.
        self.versions: Dict[int, int] = {}
        self.offered = 0
        self.throttled = 0
        self.executed = 0
        self.errors = 0
        self.corrected = LatencyRecorder(bounded=True)

    def storm_chooser(self, theta: float, keys: int) -> ZipfianChooser:
        """The hot-key chooser used while a storm window is active."""
        if self._storm_chooser is None:
            self._storm_chooser = ZipfianChooser(
                min(keys, self.spec.keyspace), self._storm_seed, theta
            )
        return self._storm_chooser

    def next_record(self, storm: Optional[Tuple[float, int]]) -> int:
        """Draw a record index (absolute, tenant-namespaced)."""
        if storm is not None:
            theta, keys = storm
            # Ranks map straight to the first `keys` records: the storm
            # is *meant* to concentrate on identifiable hot keys.
            offset = self.storm_chooser(theta, keys).next_rank()
        else:
            offset = self.chooser.next_index()
        return self.base_index + offset

    def stats(self) -> dict:
        """Per-tenant counters + corrected tail for the report."""
        out = {
            "sessions": self.spec.sessions,
            "offered": self.offered,
            "throttled": self.throttled,
            "executed": self.executed,
            "errors": self.errors,
        }
        if not self.corrected.is_empty:
            out["corrected_p50_ns"] = self.corrected.percentile(50)
            out["corrected_p99_ns"] = self.corrected.percentile(99)
        return out


class SessionModel:
    """The full tenant mix, bound to a cluster's attested connections.

    Owns the per-tenant :class:`TenantState` cohorts and the pooled
    :class:`~repro.shard.router.ShardedClient` connections; the engine
    asks it to :meth:`draw` one operation per arrival timestamp.
    """

    def __init__(
        self,
        cluster,
        mix: List[TenantSpec],
        seed: int = 0,
        near_cache: bool = False,
        read_offload: bool = False,
        cache_entries: int = 256,
        cache_lease_ns: Optional[int] = None,
    ):
        if not mix:
            raise ConfigurationError("tenant mix must not be empty")
        names = [spec.name for spec in mix]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in mix: {names}")
        from repro.shard.router import ShardedClient

        self.cluster = cluster
        self.seed = seed
        self.near_cache = near_cache
        self.read_offload = read_offload
        self.tenants: List[TenantState] = [
            TenantState(i, spec, seed) for i, spec in enumerate(mix)
        ]
        self._weights = [spec.weight for spec in mix]
        self._draw_rng = random.Random(seed ^ 0xD4A3)
        #: (tenant_index, conn_index) -> router. Real attested sessions;
        #: ids are arithmetic so reruns in one process stay identical.
        self.connections: Dict[Tuple[int, int], ShardedClient] = {}
        for state in self.tenants:
            for k in range(state.spec.connections):
                client_id = (
                    (state.index + 1) * _TENANT_CLIENT_STRIDE + k
                )
                self.connections[(state.index, k)] = ShardedClient(
                    cluster,
                    client_id=client_id,
                    keygen=KeyGenerator(seed),
                    max_retries=4,
                    retry_backoff_s=0.0,
                    # Pooled connections share tenant keyspaces, so the
                    # router keeps its tracker advisory: caching must
                    # bound staleness by lease/epoch, not accuse the
                    # store of other connections' overwrites.
                    near_cache=near_cache,
                    read_offload=read_offload,
                    cache_entries=cache_entries,
                    cache_lease_ns=cache_lease_ns,
                )

    @property
    def total_sessions(self) -> int:
        """Logical population across every tenant (can be millions)."""
        return sum(state.spec.sessions for state in self.tenants)

    def all_sessions(self) -> list:
        """Every underlying per-shard client session (for fault install)."""
        out = []
        for conn in self.connections.values():
            out.extend(conn.sessions.values())
        return out

    def preload(self) -> int:
        """Write every tenant's keyspace once (version 0), pre-measurement.

        Ensures in-window GETs hit stored keys rather than measuring the
        NOT_FOUND path.  Returns the number of records loaded.
        """
        loaded = 0
        for state in self.tenants:
            conn = self.connections[(state.index, 0)]
            spec = state.spec
            for offset in range(spec.keyspace):
                record = state.base_index + offset
                conn.put(
                    make_key(record), make_value(record, spec.value_size)
                )
                loaded += 1
        return loaded

    def draw(
        self, t_ns: int, storm: bool = False,
        storm_theta: float = 0.99, storm_keys: int = 4,
    ):
        """Assign the arrival at ``t_ns`` to a session and materialize it.

        Returns ``None`` when the tenant's token bucket throttles the
        arrival, else a tuple ``(tenant, conn_key, op, key, value)``
        where ``op`` is ``"get"`` or ``"put"`` and ``value`` is ``b""``
        for gets.
        """
        rng = self._draw_rng
        state = rng.choices(self.tenants, weights=self._weights, k=1)[0]
        state.offered += 1
        if state.bucket is not None and not state.bucket.allow(t_ns):
            state.throttled += 1
            return None
        spec = state.spec
        session = rng.randrange(spec.sessions)
        conn_key = (state.index, session % spec.connections)
        record = state.next_record(
            (storm_theta, storm_keys) if storm else None
        )
        key = make_key(record)
        if rng.random() < spec.read_fraction:
            return state, conn_key, "get", key, b""
        version = state.versions.get(record, 0) + 1
        state.versions[record] = version
        return (
            state,
            conn_key,
            "put",
            key,
            make_value(record, spec.value_size, version),
        )

    def tenant_stats(self) -> dict:
        """Per-tenant report section, keyed by tenant name."""
        return {
            state.spec.name: state.stats() for state in self.tenants
        }

    def nearcache_stats(self) -> Optional[dict]:
        """Cache/offload counters summed over every connection.

        None when neither feature is enabled (the report section stays
        absent and existing artifacts keep their exact bytes).
        """
        if not (self.near_cache or self.read_offload):
            return None
        out = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_revalidations": 0,
            "cache_fills": 0,
            "cache_invalidations": 0,
            "cache_expirations": 0,
            "cache_epoch_drops": 0,
            "cache_claim_mismatches": 0,
            "cache_evictions": 0,
            "offload_served": 0,
            "offload_fallbacks": 0,
        }
        for conn in self.connections.values():
            stats = conn.cache_stats()
            if stats is not None:
                out["cache_hits"] += stats["hits"]
                out["cache_misses"] += stats["misses"]
                out["cache_revalidations"] += stats["revalidations"]
                out["cache_fills"] += stats["fills"]
                out["cache_invalidations"] += stats["invalidations"]
                out["cache_expirations"] += stats["expirations"]
                out["cache_epoch_drops"] += stats["epoch_drops"]
                out["cache_claim_mismatches"] += stats["claim_mismatches"]
                out["cache_evictions"] += stats["evictions"]
            out["offload_served"] += conn.offload_reads
            out["offload_fallbacks"] += conn.offload_fallbacks
        return out
