"""Signal plane: windowed telemetry -> smoothed per-shard pressure.

The controller never reads raw telemetry.  Each published
:class:`~repro.obs.telemetry.ClusterTelemetry` snapshot is reduced to
one scalar *pressure score* per shard:

``raw = max(p99/p99_ref, queue/queue_ref, epc/epc_ref, lag/lag_ref)``

where the references are the policy's scale-out thresholds (so a score
of 1.0 means "exactly at the point the policy wants another shard").
Raw scores are then smoothed with an exponentially weighted moving
average, ``score = alpha * raw + (1 - alpha) * prev``, which is what
the ``util`` metric in scale-in rules reads.  Smoothing plus the
policy's ``for=N`` streaks are the first half of the stability story;
the guard's cooldowns are the second.

Everything here is pure float arithmetic over sim-clock snapshots, so
two runs with the same seed produce bit-identical score trajectories
-- the property the byte-identical decision-log gate leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.obs.telemetry import ClusterTelemetry

__all__ = ["ShardPressure", "SignalPlane", "DEFAULT_REFERENCES"]

#: Fallback normalizers when the policy has no scale-out rule for a
#: metric.  Chosen at the same order of magnitude as the traffic SLO
#: (p99 < 5 ms) and typical sim queue/EPC scales.
DEFAULT_REFERENCES: Dict[str, float] = {
    "p99": 2_000_000.0,  # 2 ms in ns
    "queue": 16.0,  # ring entries
    "epc": 8.0 * 1024 * 1024,  # 8 MiB working set
    "lag": 24.0,  # replication-log records
}


@dataclass(frozen=True)
class ShardPressure:
    """One shard's pressure for one tick."""

    shard: str
    components: Mapping[str, float]  # per-metric normalized ratios
    raw: float  # max of components this tick
    score: float  # EWMA-smoothed raw

    @property
    def driver(self) -> str:
        """The metric contributing the max component (ties: name order)."""
        return max(sorted(self.components), key=lambda k: self.components[k])


class SignalPlane:
    """Turns telemetry snapshots into smoothed pressure scores."""

    def __init__(
        self,
        references: Optional[Mapping[str, float]] = None,
        alpha: float = 0.5,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        refs = dict(DEFAULT_REFERENCES)
        if references:
            for metric, limit in references.items():
                if limit > 0:
                    refs[metric] = float(limit)
        self.references = refs
        self.alpha = alpha
        self._scores: Dict[str, float] = {}

    def update(self, snapshot: ClusterTelemetry) -> Dict[str, ShardPressure]:
        """Fold one snapshot into the EWMA state; return fresh views.

        Shards absent from the snapshot (migrated away and drained)
        are dropped from the smoothing state so a re-joined shard of
        the same name starts cold instead of inheriting stale history.
        """
        refs = self.references
        views: Dict[str, ShardPressure] = {}
        for name in sorted(snapshot.shards):
            sample = snapshot.shards[name]
            components = {
                "p99": sample.p99_ns / refs["p99"],
                "queue": sample.queue_depth / refs["queue"],
                "epc": sample.epc_bytes / refs["epc"],
                "lag": sample.replication_lag / refs["lag"],
            }
            raw = max(components.values())
            prev = self._scores.get(name)
            if prev is None:
                score = raw
            else:
                score = self.alpha * raw + (1.0 - self.alpha) * prev
            self._scores[name] = score
            views[name] = ShardPressure(
                shard=name, components=components, raw=raw, score=score
            )
        for stale in [n for n in self._scores if n not in views]:
            del self._scores[stale]
        return views

    def scores(self) -> Dict[str, float]:
        """Current smoothed score per shard (copy)."""
        return dict(self._scores)
