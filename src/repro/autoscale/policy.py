"""The declarative autoscaling policy grammar and its evaluation engine.

Policies are written in the same compact comma-separated style as the
SLO grammar (:mod:`repro.obs.slo`) so they can ride a CLI flag::

    scale-out:p99>2ms:for=2,scale-in:util<25%:for=8

Four rule kinds, one per actuator verb:

``scale-out:METRIC>LIMIT[:for=N][:shard=GLOB]``
    Add a shard when a matching shard's windowed ``METRIC`` exceeds
    ``LIMIT`` for ``N`` consecutive ticks.  Metrics: ``p99`` (duration
    with ns/us/ms/s units), ``queue`` (ring entries), ``epc`` (bytes,
    ``KiB``/``MiB`` accepted), ``lag`` (replication-log records).

``scale-in:util<P%[:for=N]``
    Remove the least-pressured shard when **every** shard's smoothed
    pressure score (see :mod:`repro.autoscale.signals`) has stayed
    below ``P%`` of the scale-out threshold for ``N`` consecutive
    ticks.  The gap between the scale-out limits and the scale-in
    fraction is the hysteresis band; the stability guard adds cooldowns
    on top.

``replica-out:lag>N[:for=K][:shard=GLOB]``
    Grow a shard's replica group when its replication lag exceeds
    ``N`` records for ``K`` consecutive ticks.

``replica-in:lag<N[:for=K][:shard=GLOB]``
    Shrink a shard's replica group back toward the configured floor
    once its lag has stayed under ``N`` for ``K`` ticks.

``for`` defaults to 1; ``shard`` is an :func:`fnmatch.fnmatch` glob
defaulting to ``*``.  Directions are fixed per kind (out-rules use
``>``, in-rules use ``<``) so a spec cannot accidentally invert its
hysteresis.  :func:`parse_policy` raises
:class:`~repro.errors.ConfigurationError` on any malformed rule, so a
bad ``--policy`` flag fails fast with exit code 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.telemetry import ClusterTelemetry

__all__ = [
    "DEFAULT_POLICY_SPEC",
    "PolicyRule",
    "Proposal",
    "PolicyEngine",
    "parse_policy",
]

#: Default elastic policy: scale out well before the 5 ms traffic SLO
#: burns, scale back in only after a long quiet spell far below the
#: out-threshold (the hysteresis band), and keep replica groups sized
#: to their replication lag.
DEFAULT_POLICY_SPEC = (
    "scale-out:p99>2ms:for=2,scale-in:util<25%:for=8,"
    "replica-out:lag>24:for=3,replica-in:lag<2:for=8"
)

#: Rule kinds in actuation-priority order (pressure relief first).
RULE_KINDS = ("scale-out", "replica-out", "scale-in", "replica-in")

_UNITS_NS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}
_UNITS_BYTES = {"B": 1, "KiB": 1024, "MiB": 1024 * 1024}

#: Which metrics each rule kind accepts, and the comparison it implies.
_KIND_METRICS = {
    "scale-out": ("p99", "queue", "epc", "lag"),
    "scale-in": ("util",),
    "replica-out": ("lag",),
    "replica-in": ("lag",),
}
_KIND_OPS = {
    "scale-out": ">",
    "scale-in": "<",
    "replica-out": ">",
    "replica-in": "<",
}


def _parse_duration_ns(text: str, rule_text: str) -> float:
    for unit, scale in sorted(_UNITS_NS.items(), key=lambda kv: -len(kv[0])):
        if text.endswith(unit):
            try:
                return float(text[: -len(unit)]) * scale
            except ValueError:
                break
    raise ConfigurationError(
        f"bad duration {text!r} in rule {rule_text!r} "
        "(expected e.g. 800us, 2ms)"
    )


def _parse_bytes(text: str, rule_text: str) -> float:
    for unit, scale in sorted(
        _UNITS_BYTES.items(), key=lambda kv: -len(kv[0])
    ):
        if text.endswith(unit):
            try:
                return float(text[: -len(unit)]) * scale
            except ValueError:
                break
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"bad byte size {text!r} in rule {rule_text!r} "
            "(expected e.g. 4096, 64KiB, 1MiB)"
        )


@dataclass(frozen=True)
class PolicyRule:
    """One parsed autoscaling objective."""

    kind: str  # one of RULE_KINDS
    metric: str  # p99 | queue | epc | lag | util
    limit: float  # canonical unit: ns / count / bytes / fraction
    for_ticks: int = 1
    shard: str = "*"
    raw: str = ""  # the spec's own METRIC>LIMIT text, for display

    @property
    def name(self) -> str:
        """Stable short name used in decision records."""
        op = _KIND_OPS[self.kind]
        clause = self.raw or f"{self.metric}{op}{self.limit:g}"
        core = f"{self.kind}:{clause}"
        if self.for_ticks != 1:
            core += f":for={self.for_ticks}"
        if self.shard != "*":
            core += f":shard={self.shard}"
        return core

    def matches(self, shard: str) -> bool:
        """Whether this rule applies to ``shard``."""
        return fnmatch(shard, self.shard)


def parse_policy(spec: str) -> List[PolicyRule]:
    """Parse a comma-separated policy spec into rules (see module doc)."""
    rules: List[PolicyRule] = []
    for rule_text in (piece.strip() for piece in spec.split(",")):
        if not rule_text:
            continue
        parts = rule_text.split(":")
        kind = parts[0]
        if kind not in RULE_KINDS:
            raise ConfigurationError(
                f"unknown policy rule kind {kind!r} in {rule_text!r} "
                f"(known: {', '.join(RULE_KINDS)})"
            )
        op = _KIND_OPS[kind]
        metric = limit_text = None
        for_ticks = 1
        shard = "*"
        if len(parts) < 2:
            raise ConfigurationError(
                f"rule {rule_text!r} needs a METRIC{op}LIMIT clause"
            )
        for part in parts[1:]:
            if "=" in part:
                key, _, value = part.partition("=")
                if key == "for":
                    try:
                        for_ticks = int(value)
                    except ValueError:
                        raise ConfigurationError(
                            f"bad for={value!r} in rule {rule_text!r}"
                        )
                    if for_ticks < 1:
                        raise ConfigurationError(
                            f"for= must be >= 1 in rule {rule_text!r}"
                        )
                elif key == "shard":
                    if not value:
                        raise ConfigurationError(
                            f"empty shard= glob in rule {rule_text!r}"
                        )
                    shard = value
                else:
                    raise ConfigurationError(
                        f"unknown clause {key!r} in rule {rule_text!r}"
                    )
            elif op in part:
                key, _, value = part.partition(op)
                if metric is not None:
                    raise ConfigurationError(
                        f"rule {rule_text!r} names two metrics"
                    )
                metric, limit_text = key, value
            else:
                wrong = "<" if op == ">" else ">"
                if wrong in part:
                    raise ConfigurationError(
                        f"rule {rule_text!r}: {kind} thresholds use "
                        f"{op!r}, not {wrong!r}"
                    )
                raise ConfigurationError(
                    f"bad clause {part!r} in rule {rule_text!r}"
                )
        if metric is None or not limit_text:
            raise ConfigurationError(
                f"rule {rule_text!r} needs a METRIC{op}LIMIT clause"
            )
        if metric not in _KIND_METRICS[kind]:
            raise ConfigurationError(
                f"rule {rule_text!r}: {kind} accepts "
                f"{', '.join(_KIND_METRICS[kind])}, not {metric!r}"
            )
        if metric == "p99":
            limit = _parse_duration_ns(limit_text, rule_text)
        elif metric == "epc":
            limit = _parse_bytes(limit_text, rule_text)
        elif metric == "util":
            if not limit_text.endswith("%"):
                raise ConfigurationError(
                    f"util threshold needs a percent (e.g. util<30%) "
                    f"in rule {rule_text!r}"
                )
            try:
                limit = float(limit_text[:-1]) / 100.0
            except ValueError:
                raise ConfigurationError(
                    f"bad percent {limit_text!r} in rule {rule_text!r}"
                )
        else:  # queue / lag: plain counts
            try:
                limit = float(limit_text)
            except ValueError:
                raise ConfigurationError(
                    f"bad threshold {limit_text!r} in rule {rule_text!r}"
                )
        if limit <= 0:
            raise ConfigurationError(
                f"threshold must be positive in rule {rule_text!r}"
            )
        rules.append(
            PolicyRule(
                kind=kind,
                metric=metric,
                limit=limit,
                for_ticks=for_ticks,
                shard=shard,
                raw=f"{metric}{op}{limit_text}",
            )
        )
    if not rules:
        raise ConfigurationError(f"policy spec {spec!r} contains no rules")
    return rules


@dataclass(frozen=True)
class Proposal:
    """One action a rule wants taken this tick (pre-guard)."""

    action: str  # rule kind
    shard: Optional[str]  # target (None for scale-out: the joiner is new)
    rule: str  # rule name that fired
    value: float  # observed metric value
    limit: float  # the rule's threshold
    streak: int  # consecutive ticks the condition has held


def _metric_value(sample, metric: str) -> float:
    if metric == "p99":
        return float(sample.p99_ns)
    if metric == "queue":
        return float(sample.queue_depth)
    if metric == "epc":
        return float(sample.epc_bytes)
    return float(sample.replication_lag)  # lag


class PolicyEngine:
    """Tracks per-rule condition streaks and emits proposals.

    Streaks require *consecutive* ticks: one tick below threshold
    resets the counter, which is what makes ``for=N`` a debounce
    rather than a leaky bucket.  Scale-in is deliberately
    cluster-scoped -- the condition must hold on **every** shard at
    once, and the proposal targets the least-pressured shard -- so a
    single hot shard vetoes shrinking even when its siblings are idle.
    """

    def __init__(self, rules: List[PolicyRule]):
        if not rules:
            raise ConfigurationError("PolicyEngine needs at least one rule")
        self.rules = list(rules)
        #: (rule name, shard) -> consecutive ticks the condition held.
        self._streaks: Dict[Tuple[str, str], int] = {}

    @classmethod
    def from_spec(cls, spec: Optional[str] = None) -> "PolicyEngine":
        """Build an engine from a spec string (defaults when None)."""
        return cls(parse_policy(spec if spec else DEFAULT_POLICY_SPEC))

    def out_references(self) -> Dict[str, float]:
        """Scale-out thresholds per metric (the pressure normalizers)."""
        refs: Dict[str, float] = {}
        for rule in self.rules:
            if rule.kind == "scale-out":
                refs.setdefault(rule.metric, rule.limit)
        return refs

    def _bump(self, key: Tuple[str, str], held: bool) -> int:
        if not held:
            self._streaks.pop(key, None)
            return 0
        streak = self._streaks.get(key, 0) + 1
        self._streaks[key] = streak
        return streak

    def evaluate(
        self,
        snapshot: ClusterTelemetry,
        pressures: Dict[str, float],
    ) -> List[Proposal]:
        """Advance streaks against ``snapshot``; return ripe proposals.

        ``pressures`` are the signal plane's smoothed per-shard scores
        (the ``util`` metric).  Proposals come back in
        :data:`RULE_KINDS` priority order -- pressure relief before
        shrinking -- and at most one per rule per tick.
        """
        shard_names = sorted(snapshot.shards)
        proposals: List[Proposal] = []
        for rule in self.rules:
            if rule.kind == "scale-in":
                matching = shard_names
                if not matching:
                    self._bump((rule.name, "*"), False)
                    continue
                values = [pressures.get(name, 0.0) for name in matching]
                held = all(value < rule.limit for value in values)
                streak = self._bump((rule.name, "*"), held)
                if held and streak >= rule.for_ticks:
                    quietest = min(
                        matching, key=lambda n: (pressures.get(n, 0.0), n)
                    )
                    proposals.append(
                        Proposal(
                            action="scale-in",
                            shard=quietest,
                            rule=rule.name,
                            value=max(values),
                            limit=rule.limit,
                            streak=streak,
                        )
                    )
                continue
            # Per-shard rules: scale-out / replica-out / replica-in.
            ripe: List[Proposal] = []
            for name in shard_names:
                if not rule.matches(name):
                    continue
                sample = snapshot.shards[name]
                value = _metric_value(sample, rule.metric)
                if _KIND_OPS[rule.kind] == ">":
                    held = value > rule.limit
                else:
                    held = value < rule.limit
                streak = self._bump((rule.name, name), held)
                if held and streak >= rule.for_ticks:
                    ripe.append(
                        Proposal(
                            action=rule.kind,
                            shard=None if rule.kind == "scale-out" else name,
                            rule=rule.name,
                            value=value,
                            limit=rule.limit,
                            streak=streak,
                        )
                    )
            if not ripe:
                continue
            # One proposal per rule per tick: the worst offender wins
            # (highest value for out-rules, lowest for in-rules), with
            # the shard name as a deterministic tie-break.
            if _KIND_OPS[rule.kind] == ">":
                best = max(ripe, key=lambda p: (p.value, p.shard or ""))
            else:
                best = min(ripe, key=lambda p: (p.value, p.shard or ""))
            proposals.append(best)
        proposals.sort(key=lambda p: RULE_KINDS.index(p.action))
        return proposals
