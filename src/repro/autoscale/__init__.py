"""SLO-driven elastic autoscaler (see ``docs/AUTOSCALING.md``).

A deterministic sim-clock control plane in three layers:

- :mod:`repro.autoscale.signals` -- windowed telemetry reduced to
  smoothed per-shard pressure scores;
- :mod:`repro.autoscale.policy` -- a declarative threshold grammar in
  the SLO-grammar family, evaluated into action proposals;
- :mod:`repro.autoscale.controller` -- the stability guard and the
  actuator driving :class:`~repro.shard.ShardedCluster` join/leave and
  :class:`~repro.replica.ReplicaGroup` grow/shrink, logging every
  decision (applied or refused) canonically.
"""

from repro.autoscale.controller import AutoScaler, Decision, StabilityGuard
from repro.autoscale.policy import (
    DEFAULT_POLICY_SPEC,
    PolicyEngine,
    PolicyRule,
    Proposal,
    parse_policy,
)
from repro.autoscale.signals import SignalPlane, ShardPressure

__all__ = [
    "AutoScaler",
    "Decision",
    "StabilityGuard",
    "DEFAULT_POLICY_SPEC",
    "PolicyEngine",
    "PolicyRule",
    "Proposal",
    "parse_policy",
    "SignalPlane",
    "ShardPressure",
]
