"""The elastic control loop: stability guard + actuator + decision log.

:class:`AutoScaler` is driven by the telemetry pipeline
(:meth:`~repro.obs.telemetry.TelemetryPipeline.attach_controller`): each
published window lands in :meth:`AutoScaler.on_snapshot`, which folds it
through the signal plane, asks the policy engine for proposals, filters
them through the :class:`StabilityGuard`, and actuates at most **one**
topology change -- the "one change in flight" lock is structural, not a
mutex: actuation is synchronous on the sim clock and at most one
proposal per tick survives the guard.

Every proposal becomes a :class:`Decision` record whether it was
applied or refused, with a canonical one-line rendering
(:meth:`Decision.line`) -- the unit of the byte-identical-per-seed
bench gate.  Applied actions additionally emit a causal ``autoscale``
trace context (decide -> actuate -> installed hops), an
``autoscale_decision`` flight-recorder event, and bump the
``autoscale_*`` metric families.

The guard's invariants, in refusal-priority order:

- **health**: never touch topology while any primary is crashed -- a
  migration sourced from (or draining to) a dead enclave would abort
  mid-copy, and a promotion is already in charge of that shard.  This
  is what keeps autoscaler migrations from violating the ack contract
  under chaos: actuation only starts from an all-live topology, and
  the migration/replication machinery it delegates to carries the
  epoch fences from there.
- **bounds**: ``min_shards <= shards <= max_shards``; per-group backup
  counts in ``[min_replicas, max_replicas]`` (the floor preserves the
  configured ack contract -- scale-in never strips a witness the
  operator provisioned).
- **global cooldown**: at least ``cooldown_ticks`` between *any* two
  applied actions (migrations settle before the next change).
- **shard cooldown**: a shard touched by an applied action is
  untouchable for ``shard_cooldown_ticks`` -- the anti-flap band that,
  with the policy's hysteresis, makes "split then immediately join the
  same shard" structurally impossible inside the window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import ObsContext
from repro.obs.telemetry import ClusterTelemetry
from repro.autoscale.policy import PolicyEngine, Proposal
from repro.autoscale.signals import SignalPlane

__all__ = ["Decision", "StabilityGuard", "AutoScaler"]


@dataclass(frozen=True)
class Decision:
    """One autoscaling decision -- applied or refused, always logged."""

    seq: int
    tick: int
    t_ns: int
    action: str
    shard: str  # target shard ("?" for a refused scale-out, pre-naming)
    rule: str
    value: float
    limit: float
    outcome: str  # "applied" | "refused"
    reason: str  # "ok" or the guard's refusal reason
    epoch: int  # shard-map epoch after the decision
    shards: int  # shard count after the decision
    detail: Dict[str, Any] = field(default_factory=dict)

    def line(self) -> str:
        """Canonical rendering -- the byte-identical decision-log unit."""
        extra = ""
        if self.detail:
            pairs = ",".join(
                f"{k}={self.detail[k]}" for k in sorted(self.detail)
            )
            extra = f" [{pairs}]"
        return (
            f"#{self.seq:03d} tick={self.tick} t={self.t_ns}ns "
            f"{self.outcome}:{self.action} shard={self.shard} "
            f"rule={self.rule} value={self.value:.3f} limit={self.limit:g} "
            f"reason={self.reason} epoch={self.epoch} "
            f"shards={self.shards}{extra}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped view of this decision."""
        return {
            "seq": self.seq,
            "tick": self.tick,
            "t_ns": self.t_ns,
            "action": self.action,
            "shard": self.shard,
            "rule": self.rule,
            "value": round(self.value, 3),
            "limit": self.limit,
            "outcome": self.outcome,
            "reason": self.reason,
            "epoch": self.epoch,
            "shards": self.shards,
            "detail": dict(self.detail),
        }


class StabilityGuard:
    """Hysteresis bands' enforcement arm: cooldowns, bounds, health."""

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        min_replicas: int = 0,
        max_replicas: int = 2,
        cooldown_ticks: int = 6,
        shard_cooldown_ticks: int = 12,
    ):
        if min_shards < 1:
            raise ConfigurationError(
                f"min_shards must be >= 1, got {min_shards}"
            )
        if max_shards < min_shards:
            raise ConfigurationError(
                f"max_shards {max_shards} < min_shards {min_shards}"
            )
        if min_replicas < 0 or max_replicas < min_replicas:
            raise ConfigurationError(
                f"bad replica bounds [{min_replicas}, {max_replicas}]"
            )
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.cooldown_ticks = cooldown_ticks
        self.shard_cooldown_ticks = shard_cooldown_ticks
        self._last_applied_tick: Optional[int] = None
        self._shard_last_tick: Dict[str, int] = {}

    def review(self, proposal: Proposal, cluster, tick: int) -> str:
        """Why ``proposal`` must be refused, or ``"ok"``."""
        for name in cluster.shards:
            if cluster.server(name).crashed:
                return f"unhealthy:{name}"
        if (
            self._last_applied_tick is not None
            and tick - self._last_applied_tick < self.cooldown_ticks
        ):
            return "global-cooldown"
        target = proposal.shard
        if target is not None:
            last = self._shard_last_tick.get(target)
            if last is not None and tick - last < self.shard_cooldown_ticks:
                return "shard-cooldown"
        count = len(cluster.shards)
        if proposal.action == "scale-out" and count >= self.max_shards:
            return "max-shards"
        if proposal.action == "scale-in" and count <= self.min_shards:
            return "min-shards"
        if proposal.action in ("replica-out", "replica-in"):
            group = cluster.group(target)
            backups = len(group.backups)
            if proposal.action == "replica-out":
                if backups >= self.max_replicas:
                    return "max-replicas"
            else:
                if backups <= self.min_replicas:
                    return "min-replicas"
        return "ok"

    def mark_applied(self, tick: int, shards: List[str]) -> None:
        """Record an applied action touching ``shards`` at ``tick``."""
        self._last_applied_tick = tick
        for name in shards:
            self._shard_last_tick[name] = tick


class AutoScaler:
    """The control plane: signals -> policy -> guard -> actuator.

    Parameters
    ----------
    cluster:
        The :class:`~repro.shard.ShardedCluster` to steer.
    policy:
        A policy spec string (see :mod:`repro.autoscale.policy`) or a
        pre-built :class:`PolicyEngine`; defaults to
        :data:`~repro.autoscale.policy.DEFAULT_POLICY_SPEC`.
    guard:
        The :class:`StabilityGuard`; defaults bound shard count at 8.
    obs:
        Observability context; defaults to the cluster's.
    on_topology_change:
        Called (no args) after every *applied* action -- the traffic
        engine uses it to re-install service hooks on members spawned
        mid-run.
    """

    def __init__(
        self,
        cluster,
        policy: Optional[Any] = None,
        guard: Optional[StabilityGuard] = None,
        obs: Optional[ObsContext] = None,
        alpha: float = 0.5,
        on_topology_change: Optional[Callable[[], None]] = None,
    ):
        self.cluster = cluster
        if isinstance(policy, PolicyEngine):
            self.policy = policy
        else:
            self.policy = PolicyEngine.from_spec(policy)
        self.guard = guard if guard is not None else StabilityGuard()
        self.obs = obs if obs is not None else cluster.obs
        self.signals = SignalPlane(self.policy.out_references(), alpha=alpha)
        self.on_topology_change = on_topology_change
        self.decisions: List[Decision] = []
        self.tick = 0
        #: Consecutive identical refusals are logged once, then counted
        #: here -- a policy stuck against a bound (e.g. ``replica-in``
        #: at the floor) states its refusal once instead of once per
        #: tick, keeping the decision log bounded and readable.
        self.suppressed_refusals = 0
        self._last_refusal: Dict[tuple, tuple] = {}
        #: (t_ns, shard_count) change points for the shard-hours integral.
        self._shard_points: List[tuple] = []
        registry = self.obs.registry
        self._obs_shards = registry.gauge(
            "autoscale_shards", "shard count steered by the autoscaler"
        )
        self._obs_backups = registry.gauge(
            "autoscale_backups",
            "replica backups across all groups under the autoscaler",
        )
        self._obs_shards.set(len(cluster.shards))
        self._obs_backups.set(self._backup_count())

    # -- introspection ------------------------------------------------------

    def _backup_count(self) -> int:
        return sum(
            len(self.cluster.group(name).backups)
            for name in self.cluster.shards
        )

    def log_lines(self) -> List[str]:
        """Canonical decision log (applied and refused)."""
        return [d.line() for d in self.decisions]

    def log_fingerprint(self) -> str:
        """sha256 over the canonical log -- the determinism gate."""
        blob = "\n".join(self.log_lines()).encode()
        return hashlib.sha256(blob).hexdigest()

    def applied(self) -> List[Decision]:
        """Decisions that actuated a topology change."""
        return [d for d in self.decisions if d.outcome == "applied"]

    def refused(self) -> List[Decision]:
        """Decisions the stability guard blocked (deduplicated)."""
        return [d for d in self.decisions if d.outcome == "refused"]

    def flap_count(self) -> int:
        """Applied out/in pairs on one shard within the shard cooldown.

        The acceptance gate's definition of flapping: a split (join)
        immediately undone by a join (split) of the *same shard* inside
        the guard's per-shard cooldown window.  Zero by construction
        when the guard is on; counted from the log so the bench can
        verify rather than trust.
        """
        window = self.guard.shard_cooldown_ticks
        inverse = {
            "scale-out": "scale-in",
            "scale-in": "scale-out",
            "replica-out": "replica-in",
            "replica-in": "replica-out",
        }
        applied = self.applied()
        flaps = 0
        for i, first in enumerate(applied):
            for later in applied[i + 1 :]:
                if later.tick - first.tick >= window:
                    break
                if (
                    later.shard == first.shard
                    and later.action == inverse[first.action]
                ):
                    flaps += 1
        return flaps

    def shard_ns(self, until_ns: int) -> int:
        """Integral of shard count over time up to ``until_ns``.

        The elasticity dividend metric: a static-4 topology accrues
        ``4 * duration`` shard-ns; the controller should do better.
        """
        total = 0
        points = self._shard_points
        for i, (t_ns, count) in enumerate(points):
            end = points[i + 1][0] if i + 1 < len(points) else until_ns
            end = min(end, until_ns)
            if end > t_ns:
                total += (end - t_ns) * count
        return total

    def summary(self, duration_ns: Optional[int] = None) -> Dict[str, Any]:
        """Roll-up for reports: counts, churn, fingerprint, shard-time."""
        actions: Dict[str, int] = {}
        for decision in self.applied():
            actions[decision.action] = actions.get(decision.action, 0) + 1
        out = {
            "decisions": len(self.decisions),
            "applied": len(self.applied()),
            "refused": len(self.refused()),
            "suppressed_refusals": self.suppressed_refusals,
            "actions": actions,
            "flapping": self.flap_count(),
            "final_shards": len(self.cluster.shards),
            "final_backups": self._backup_count(),
            "max_shards_seen": max(
                [count for _, count in self._shard_points],
                default=len(self.cluster.shards),
            ),
            "log_sha256": self.log_fingerprint(),
        }
        if duration_ns is not None:
            out["shard_ms"] = round(self.shard_ns(duration_ns) / 1e6, 3)
        return out

    # -- the control loop ---------------------------------------------------

    def on_snapshot(self, snapshot: ClusterTelemetry) -> List[Decision]:
        """One control tick: evaluate the window, actuate at most once."""
        self.tick += 1
        if not self._shard_points:
            # Anchor the shard-time integral at the first window so a
            # late-attached controller does not back-date shard-hours.
            self._shard_points.append(
                (snapshot.t_ns, len(self.cluster.shards))
            )
        pressures = {
            name: view.score
            for name, view in self.signals.update(snapshot).items()
        }
        for name, score in pressures.items():
            self.obs.registry.gauge(
                "autoscale_pressure",
                "smoothed per-shard pressure score (1.0 = scale-out point)",
                {"shard": name},
            ).set(round(score, 6))
        proposals = self.policy.evaluate(snapshot, pressures)
        made: List[Decision] = []
        actuated = False
        for proposal in proposals:
            reason = self.guard.review(proposal, self.cluster, self.tick)
            if reason == "ok" and actuated:
                # One topology change in flight: later proposals this
                # tick wait for the next window (and its cooldowns).
                reason = "change-in-flight"
            if reason != "ok":
                key = (proposal.action, proposal.shard)
                signature = (proposal.rule, reason)
                last = self._last_refusal.get(key)
                self._last_refusal[key] = (signature, self.tick)
                if (
                    last is not None
                    and last[0] == signature
                    and self.tick - last[1] <= 2
                ):
                    # An unbroken streak of the same refusal: one line.
                    self.suppressed_refusals += 1
                    continue
                made.append(self._record(snapshot, proposal, "refused", reason))
                continue
            self._last_refusal.pop((proposal.action, proposal.shard), None)
            made.append(self._actuate(snapshot, proposal))
            actuated = True
        return made

    def _record(
        self,
        snapshot: ClusterTelemetry,
        proposal: Proposal,
        outcome: str,
        reason: str,
        shard: Optional[str] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> Decision:
        decision = Decision(
            seq=len(self.decisions) + 1,
            tick=self.tick,
            t_ns=snapshot.t_ns,
            action=proposal.action,
            shard=shard or proposal.shard or "?",
            rule=proposal.rule,
            value=proposal.value,
            limit=proposal.limit,
            outcome=outcome,
            reason=reason,
            epoch=self.cluster.epoch,
            shards=len(self.cluster.shards),
            detail=detail or {},
        )
        self.decisions.append(decision)
        self.obs.registry.counter(
            "autoscale_decisions_total",
            "autoscale decisions by action and outcome",
            {"action": proposal.action, "outcome": outcome},
        ).inc()
        self.obs.record_event(
            "autoscale_decision",
            action=decision.action,
            shard=decision.shard,
            outcome=outcome,
            reason=reason,
            rule=decision.rule,
            tick=decision.tick,
        )
        return decision

    def _actuate(
        self, snapshot: ClusterTelemetry, proposal: Proposal
    ) -> Decision:
        cluster = self.cluster
        # Applied actions carry a causal trace of their own unless the
        # controller fired inside someone else's context (it never does
        # in the shipped wiring -- ticks run between operations).
        owns_context = self.obs.ctxlog.current is None
        if owns_context:
            self.obs.ctxlog.begin("autoscale", client_id=-1)
        self.obs.hop(
            "autoscale_decide",
            shard=proposal.shard,
            action=proposal.action,
            rule=proposal.rule,
        )
        detail: Dict[str, Any] = {}
        touched: List[str] = []
        try:
            if proposal.action == "scale-out":
                before = set(cluster.shards)
                report = cluster.add_shard()
                joiner = next(iter(set(cluster.shards) - before))
                detail["joined"] = joiner
                detail["moved"] = report.total_moved
                touched = [joiner]
                shard = joiner
            elif proposal.action == "scale-in":
                shard = proposal.shard
                report = cluster.remove_shard(shard)
                detail["moved"] = report.total_moved
                touched = [shard]
            elif proposal.action == "replica-out":
                shard = proposal.shard
                backup = cluster.add_replica(shard)
                detail["backup"] = backup.shard_name
                touched = [shard]
            else:  # replica-in
                shard = proposal.shard
                victim = cluster.remove_replica(shard)
                detail["backup"] = victim.shard_name
                touched = [shard]
            self.obs.hop(
                "autoscale_installed",
                shard=shard,
                epoch=cluster.epoch,
                shards=len(cluster.shards),
            )
        finally:
            if owns_context:
                self.obs.ctxlog.end("ok")
        self.guard.mark_applied(self.tick, touched)
        self._shard_points.append((snapshot.t_ns, len(cluster.shards)))
        self._obs_shards.set(len(cluster.shards))
        self._obs_backups.set(self._backup_count())
        decision = self._record(
            snapshot, proposal, "applied", "ok", shard=shard, detail=detail
        )
        if self.on_topology_change is not None:
            self.on_topology_change()
        return decision
