"""Discrete-event simulation engine.

A minimal, fast process-based simulator in the style of SimPy: processes are
Python generators that ``yield`` timeouts, events, or other processes.  Time
is an integer number of **nanoseconds**, which keeps arithmetic exact and
makes cycle accounting trivial (``cycles / GHz`` nanoseconds).

The engine is deliberately small -- the Precursor benchmarks push millions of
events through it, so every layer of indirection costs wall-clock time.
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.stats import (
    CdfPoint,
    LatencyRecorder,
    ThroughputMeter,
    cycles_to_ns,
    ns_to_us,
)

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "Store",
    "LatencyRecorder",
    "ThroughputMeter",
    "CdfPoint",
    "cycles_to_ns",
    "ns_to_us",
]
