"""Measurement utilities: latency recording, percentiles, CDFs, throughput.

All latencies are nanoseconds (matching the simulator clock); helpers are
provided to convert to microseconds for reporting, since the paper quotes
latency in microseconds and throughput in Kops/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import Histogram

__all__ = [
    "LatencyRecorder",
    "ThroughputMeter",
    "CdfPoint",
    "cycles_to_ns",
    "ns_to_us",
]


def cycles_to_ns(cycles: float, ghz: float) -> int:
    """Convert CPU cycles at ``ghz`` GHz into integer nanoseconds."""
    if ghz <= 0:
        raise SimulationError(f"clock rate must be positive, got {ghz}")
    return int(round(cycles / ghz))


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / 1000.0


@dataclass(frozen=True)
class CdfPoint:
    """One point of an empirical CDF: P(latency <= latency_ns) = fraction."""

    latency_ns: int
    fraction: float


class LatencyRecorder:
    """Accumulates latency samples and answers distribution queries.

    Two storage modes:

    - **exact** (default): every sample is kept, quantiles are nearest-rank
      over the sorted list.  Memory grows linearly with the run.
    - **bounded** (``bounded=True``): samples go into a log-linear
      :class:`~repro.obs.metrics.Histogram` with ``bucket_resolution``
      sub-buckets per power of two.  Memory is bounded regardless of run
      length; quantiles carry a relative error of at most
      ``1 / (2 * bucket_resolution)`` (the minimum and maximum are exact).

    Empty-recorder behaviour (check :attr:`is_empty` before querying):
    ``mean()`` returns ``0.0`` and ``cdf()`` returns ``[]`` — both are
    well-defined empty aggregates — while ``percentile()``, ``median()``
    and ``summary()`` raise :class:`SimulationError`, because a quantile
    of zero samples has no value to return.
    """

    def __init__(self, bounded: bool = False, bucket_resolution: int = 64):
        self._samples: List[int] = []
        self._sorted = True
        self._hist: Optional[Histogram] = None
        if bounded:
            self._hist = Histogram(resolution=bucket_resolution)

    @property
    def bounded(self) -> bool:
        """True when samples are folded into a bounded histogram."""
        return self._hist is not None

    @property
    def histogram(self) -> Optional[Histogram]:
        """The backing histogram in bounded mode, else None."""
        return self._hist

    def record(self, latency_ns: int) -> None:
        """Add one sample (ns)."""
        if latency_ns < 0:
            raise SimulationError(f"negative latency: {latency_ns}")
        if self._hist is not None:
            self._hist.record(latency_ns)
        else:
            self._samples.append(latency_ns)
            self._sorted = False

    def extend(self, latencies: Iterable[int]) -> None:
        """Add many samples at once."""
        for value in latencies:
            self.record(value)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other``'s samples into this recorder; returns ``self``.

        Bounded recorders merge histogram-to-histogram (the
        :meth:`~repro.obs.metrics.Histogram.merge` the telemetry pipeline
        already relies on), so aggregating per-tenant recorders never
        materializes raw sample lists.  An *exact* ``other`` folds its
        samples in one by one.  Merging a bounded recorder into an exact
        one raises :class:`SimulationError` -- the bounded side's raw
        samples no longer exist, so the merge would silently change the
        target's accuracy contract.
        """
        if other is self:
            raise SimulationError("cannot merge a recorder into itself")
        if self._hist is not None:
            if other._hist is not None:
                if other._hist.resolution != self._hist.resolution:
                    raise SimulationError(
                        "bucket_resolution mismatch: "
                        f"{self._hist.resolution} vs {other._hist.resolution}"
                    )
                self._hist.merge(other._hist)
            else:
                for value in other._samples:
                    self._hist.record(value)
            return self
        if other._hist is not None:
            raise SimulationError(
                "cannot merge a bounded recorder into an exact one; "
                "its raw samples are gone (make the target bounded)"
            )
        self._samples.extend(other._samples)
        if other._samples:
            self._sorted = False
        return self

    @classmethod
    def merge_series(
        cls,
        recorders: Iterable["LatencyRecorder"],
        bucket_resolution: int = 64,
    ) -> "LatencyRecorder":
        """Aggregate many recorders into one fresh *bounded* recorder.

        The aggregate is histogram-backed regardless of the inputs'
        modes, so folding a fleet of per-tenant (or per-shard) recorders
        stays O(buckets) in memory.  Bounded inputs must share
        ``bucket_resolution``.
        """
        merged = cls(bounded=True, bucket_resolution=bucket_resolution)
        for recorder in recorders:
            merged.merge(recorder)
        return merged

    def _ensure_sorted(self) -> List[int]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def __len__(self) -> int:
        return self.count

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        if self._hist is not None:
            return self._hist.count
        return len(self._samples)

    @property
    def is_empty(self) -> bool:
        """True when no samples have been recorded."""
        return self.count == 0

    def mean(self) -> float:
        """Arithmetic mean latency in ns; 0.0 when empty."""
        if self.is_empty:
            return 0.0
        if self._hist is not None:
            return self._hist.mean()
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> int:
        """Nearest-rank percentile in ns, ``pct`` in (0, 100].

        Raises :class:`SimulationError` when no samples are recorded.
        """
        if not 0 < pct <= 100:
            raise SimulationError(f"percentile out of range: {pct}")
        if self.is_empty:
            raise SimulationError(
                "no latency samples recorded; check is_empty before querying"
            )
        if self._hist is not None:
            return self._hist.percentile(pct)
        samples = self._ensure_sorted()
        rank = max(1, math.ceil(pct / 100.0 * len(samples)))
        return samples[rank - 1]

    def median(self) -> int:
        """50th percentile in ns."""
        return self.percentile(50)

    def max_ns(self) -> int:
        """Largest recorded sample (exact in both modes)."""
        if self.is_empty:
            raise SimulationError(
                "no latency samples recorded; check is_empty before querying"
            )
        if self._hist is not None:
            return self._hist.max
        return self._ensure_sorted()[-1]

    def cdf(self, points: int = 100) -> List[CdfPoint]:
        """Empirical CDF sampled at ``points`` evenly spaced fractions."""
        if self.is_empty:
            return []
        out: List[CdfPoint] = []
        if self._hist is not None:
            for i in range(1, points + 1):
                frac = i / points
                out.append(CdfPoint(self._hist.quantile(frac), frac))
            return out
        samples = self._ensure_sorted()
        n = len(samples)
        for i in range(1, points + 1):
            frac = i / points
            rank = max(1, math.ceil(frac * n))
            out.append(CdfPoint(samples[rank - 1], frac))
        return out

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p90 / p95 / p99 / max in microseconds.

        Raises :class:`SimulationError` when no samples are recorded (the
        same behaviour as :meth:`percentile`; use :attr:`is_empty` to
        distinguish an idle run from a query bug).
        """
        if self.is_empty:
            raise SimulationError(
                "no latency samples recorded; check is_empty before querying"
            )
        return {
            "mean_us": ns_to_us(self.mean()),
            "p50_us": ns_to_us(self.percentile(50)),
            "p90_us": ns_to_us(self.percentile(90)),
            "p95_us": ns_to_us(self.percentile(95)),
            "p99_us": ns_to_us(self.percentile(99)),
            "max_us": ns_to_us(self.max_ns()),
        }


class ThroughputMeter:
    """Counts completed operations inside a measurement window.

    The warm-up phase of a simulation is excluded by calling
    :meth:`open_window` once steady state is reached, and
    :meth:`close_window` before reading :meth:`kops`.
    """

    def __init__(self) -> None:
        self.completed = 0
        self._window_start: Optional[int] = None
        self._window_end: Optional[int] = None
        self._in_window = 0

    def open_window(self, now_ns: int) -> None:
        """Start the measurement window at simulated time ``now_ns``."""
        self._window_start = now_ns
        self._in_window = 0

    def close_window(self, now_ns: int) -> None:
        """End the measurement window at simulated time ``now_ns``."""
        if self._window_start is None:
            raise SimulationError("close_window before open_window")
        if now_ns <= self._window_start:
            raise SimulationError("empty measurement window")
        self._window_end = now_ns

    def record_completion(self) -> None:
        """Count one finished operation (also counted inside the window)."""
        self.completed += 1
        if self._window_start is not None and self._window_end is None:
            self._in_window += 1

    def kops(self) -> float:
        """Throughput over the closed window, in Kops/s."""
        if self._window_start is None or self._window_end is None:
            raise SimulationError("measurement window not closed")
        seconds = (self._window_end - self._window_start) / 1e9
        if seconds <= 0:
            # close_window already rejects this, but a subclass or a direct
            # attribute poke could still get here -- fail with a real message
            # instead of a ZeroDivisionError or a negative throughput.
            raise SimulationError(
                "measurement window has zero or negative duration; "
                "throughput is undefined (check the open_window/"
                "close_window timestamps before querying)"
            )
        if self._in_window == 0:
            raise SimulationError(
                "no operations completed inside the measurement window; "
                "throughput is undefined (run longer or shorten warm-up)"
            )
        return self._in_window / seconds / 1e3

    @property
    def window_ops(self) -> int:
        """Operations completed inside the measurement window so far."""
        return self._in_window


def merge_series(
    labels: Sequence[str], columns: Sequence[Sequence[float]]
) -> List[Tuple[str, Tuple[float, ...]]]:
    """Zip row labels with per-system columns for tabular reports."""
    if any(len(col) != len(labels) for col in columns):
        raise SimulationError("series length mismatch")
    return [
        (label, tuple(col[i] for col in columns))
        for i, label in enumerate(labels)
    ]
