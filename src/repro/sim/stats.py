"""Measurement utilities: latency recording, percentiles, CDFs, throughput.

All latencies are nanoseconds (matching the simulator clock); helpers are
provided to convert to microseconds for reporting, since the paper quotes
latency in microseconds and throughput in Kops/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = [
    "LatencyRecorder",
    "ThroughputMeter",
    "CdfPoint",
    "cycles_to_ns",
    "ns_to_us",
]


def cycles_to_ns(cycles: float, ghz: float) -> int:
    """Convert CPU cycles at ``ghz`` GHz into integer nanoseconds."""
    if ghz <= 0:
        raise SimulationError(f"clock rate must be positive, got {ghz}")
    return int(round(cycles / ghz))


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / 1000.0


@dataclass(frozen=True)
class CdfPoint:
    """One point of an empirical CDF: P(latency <= latency_ns) = fraction."""

    latency_ns: int
    fraction: float


class LatencyRecorder:
    """Accumulates latency samples and answers distribution queries."""

    def __init__(self) -> None:
        self._samples: List[int] = []
        self._sorted = True

    def record(self, latency_ns: int) -> None:
        """Add one sample (ns)."""
        if latency_ns < 0:
            raise SimulationError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = False

    def extend(self, latencies: Iterable[int]) -> None:
        """Add many samples at once."""
        for value in latencies:
            self.record(value)

    def _ensure_sorted(self) -> List[int]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def mean(self) -> float:
        """Arithmetic mean latency in ns; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> int:
        """Nearest-rank percentile in ns, ``pct`` in (0, 100]."""
        if not 0 < pct <= 100:
            raise SimulationError(f"percentile out of range: {pct}")
        samples = self._ensure_sorted()
        if not samples:
            raise SimulationError("no samples recorded")
        rank = max(1, math.ceil(pct / 100.0 * len(samples)))
        return samples[rank - 1]

    def median(self) -> int:
        """50th percentile in ns."""
        return self.percentile(50)

    def cdf(self, points: int = 100) -> List[CdfPoint]:
        """Empirical CDF sampled at ``points`` evenly spaced fractions."""
        samples = self._ensure_sorted()
        if not samples:
            return []
        n = len(samples)
        out: List[CdfPoint] = []
        for i in range(1, points + 1):
            frac = i / points
            rank = max(1, math.ceil(frac * n))
            out.append(CdfPoint(samples[rank - 1], frac))
        return out

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p90 / p95 / p99 / max in microseconds."""
        if not self._samples:
            return {}
        return {
            "mean_us": ns_to_us(self.mean()),
            "p50_us": ns_to_us(self.percentile(50)),
            "p90_us": ns_to_us(self.percentile(90)),
            "p95_us": ns_to_us(self.percentile(95)),
            "p99_us": ns_to_us(self.percentile(99)),
            "max_us": ns_to_us(self._ensure_sorted()[-1]),
        }


class ThroughputMeter:
    """Counts completed operations inside a measurement window.

    The warm-up phase of a simulation is excluded by calling
    :meth:`open_window` once steady state is reached, and
    :meth:`close_window` before reading :meth:`kops`.
    """

    def __init__(self) -> None:
        self.completed = 0
        self._window_start: Optional[int] = None
        self._window_end: Optional[int] = None
        self._in_window = 0

    def open_window(self, now_ns: int) -> None:
        """Start the measurement window at simulated time ``now_ns``."""
        self._window_start = now_ns
        self._in_window = 0

    def close_window(self, now_ns: int) -> None:
        """End the measurement window at simulated time ``now_ns``."""
        if self._window_start is None:
            raise SimulationError("close_window before open_window")
        if now_ns <= self._window_start:
            raise SimulationError("empty measurement window")
        self._window_end = now_ns

    def record_completion(self) -> None:
        """Count one finished operation (also counted inside the window)."""
        self.completed += 1
        if self._window_start is not None and self._window_end is None:
            self._in_window += 1

    def kops(self) -> float:
        """Throughput over the closed window, in Kops/s."""
        if self._window_start is None or self._window_end is None:
            raise SimulationError("measurement window not closed")
        seconds = (self._window_end - self._window_start) / 1e9
        return self._in_window / seconds / 1e3

    @property
    def window_ops(self) -> int:
        """Operations completed inside the measurement window so far."""
        return self._in_window


def merge_series(
    labels: Sequence[str], columns: Sequence[Sequence[float]]
) -> List[Tuple[str, Tuple[float, ...]]]:
    """Zip row labels with per-system columns for tabular reports."""
    if any(len(col) != len(labels) for col in columns):
        raise SimulationError("series length mismatch")
    return [
        (label, tuple(col[i] for col in columns))
        for i, label in enumerate(labels)
    ]
