"""Shared resources for simulated processes: counted resources and stores.

:class:`Resource` models a pool of identical service slots (e.g. CPU cores);
:class:`Store` is an unbounded FIFO channel of Python objects (e.g. a reply
queue drained by a worker thread).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO queuing.

    Usage from a process::

        grant = resource.request()
        yield grant              # waits until a slot is free
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiting: Deque[Event] = deque()

    def request(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        grant = self._sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed()
        else:
            self._waiting.append(grant)
        return grant

    def release(self) -> None:
        """Free one slot; hands it to the longest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiting:
            # Slot transfers directly to the next waiter: in_use unchanged.
            self._waiting.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        """Number of processes currently waiting for a slot."""
        return len(self._waiting)


class Store:
    """Unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that succeeds with the
    oldest item once one is available.
    """

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (FIFO)."""
        evt = self._sim.event()
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def try_get_all(self) -> List[Any]:
        """Drain and return every queued item without blocking."""
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)
