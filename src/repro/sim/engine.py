"""The discrete-event kernel: simulator, events, processes.

Design notes
------------

* The event queue is a binary heap of ``(time, seq, callback, value)``
  tuples.  ``seq`` breaks ties FIFO so same-timestamp events run in schedule
  order, which makes simulations deterministic.
* Processes are generators.  A process may yield:

  - ``Timeout(delay)`` -- resume after ``delay`` nanoseconds;
  - an :class:`Event` -- resume when the event succeeds, receiving its value;
  - another :class:`Process` -- resume when that process terminates,
    receiving its return value (a join).

* There is no cancellation-token machinery; a process that should stop early
  checks a flag its owner sets.  This keeps the hot loop tiny.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Simulator", "Event", "Timeout", "Process"]


class Timeout:
    """A request to sleep for ``delay`` nanoseconds.  Immutable and cheap."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Event:
    """A one-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter with ``value``.  Succeeding twice
    is an error -- it almost always indicates a protocol bug in the model.
    """

    __slots__ = ("_sim", "_waiters", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._waiters: list = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiter with ``value``."""
        if self.triggered:
            raise SimulationError("event succeeded twice")
        self.triggered = True
        self.value = value
        sim = self._sim
        for proc in self._waiters:
            sim._schedule_resume(proc, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self._sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:
        return f"Event(triggered={self.triggered})"


class Process:
    """A running generator inside the simulator.

    Also behaves as a joinable event: yielding a process from another
    process waits for its termination and receives its return value.
    """

    __slots__ = ("_sim", "_gen", "_done", "alive", "result")

    def __init__(self, sim: "Simulator", gen: Generator):
        self._sim = sim
        self._gen = gen
        self._done = Event(sim)
        self.alive = True
        self.result: Any = None

    @property
    def done(self) -> Event:
        """Event that succeeds with the process return value on exit."""
        return self._done

    def _add_waiter(self, proc: "Process") -> None:
        self._done._add_waiter(proc)

    def _step(self, value: Any) -> None:
        """Advance the generator by one yield.  Called only by the kernel."""
        sim = self._sim
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._done.succeed(stop.value)
            return
        if type(target) is Timeout:
            sim._schedule_resume_after(self, target.delay)
        elif isinstance(target, (Event, Process)):
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process yielded unsupported value: {target!r}"
            )

    def __repr__(self) -> str:
        return f"Process(alive={self.alive})"


class Simulator:
    """Event loop with integer-nanosecond time.

    Typical usage::

        sim = Simulator()
        sim.spawn(client_loop(sim))
        sim.run(until=100_000_000)   # 100 ms
    """

    __slots__ = (
        "_heap",
        "_seq",
        "now",
        "events_executed",
        "_obs_clock",
        "_obs_events",
        "_obs_synced",
    )

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        #: Current simulated time in nanoseconds.
        self.now = 0
        #: Heap entries executed so far (process steps + callbacks).
        self.events_executed = 0
        self._obs_clock = None
        self._obs_events = None
        self._obs_synced = 0

    def bind_obs(self, registry) -> None:
        """Export the simulated clock and event count into ``registry``.

        The gauges/counters are synchronised at every :meth:`run` exit (not
        per event) to keep the hot loop free of metric calls.
        """
        self._obs_clock = registry.gauge(
            "sim_clock_ns", "current simulated time"
        )
        self._obs_events = registry.counter(
            "sim_events_total", "heap entries executed by the event loop"
        )

    def _sync_obs(self) -> None:
        if self._obs_clock is not None:
            self._obs_clock.set(self.now)
            self._obs_events.inc(self.events_executed - self._obs_synced)
            self._obs_synced = self.events_executed

    # -- scheduling primitives -------------------------------------------

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` ns (0 = end of current tick)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, None))

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now, self._seq, proc, value))

    def _schedule_resume_after(self, proc: Process, delay: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, proc, None))

    # -- public API -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: int) -> Timeout:
        """Convenience constructor mirroring SimPy's ``env.timeout``."""
        return Timeout(delay)

    def spawn(self, gen: Generator) -> Process:
        """Register a generator as a process starting at the current time."""
        proc = Process(self, gen)
        self._schedule_resume(proc, None)
        return proc

    def spawn_all(self, gens: Iterable[Generator]) -> list:
        """Spawn several processes at once; returns them in order."""
        return [self.spawn(g) for g in gens]

    def attach_telemetry(self, pipeline, every_ns: int) -> Process:
        """Tick a telemetry pipeline every ``every_ns`` of simulated time.

        The deterministic-tick contract of
        :class:`~repro.obs.telemetry.TelemetryPipeline`: snapshots land
        at exact simulated timestamps, so two runs of the same model
        publish identical telemetry.  Returns the ticking process.
        """
        if every_ns <= 0:
            raise SimulationError(
                f"telemetry tick interval must be positive: {every_ns}"
            )

        def ticker():
            while True:
                yield Timeout(every_ns)
                pipeline.tick()

        return self.spawn(ticker())

    def run(self, until: Optional[int] = None) -> int:
        """Drain the event heap, optionally stopping at time ``until``.

        Returns the simulation time at exit.  Events scheduled exactly at
        ``until`` are *not* executed, matching SimPy semantics.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while heap:
                when, _seq, target, value = heap[0]
                if until is not None and when >= until:
                    self.now = until
                    return self.now
                pop(heap)
                self.now = when
                executed += 1
                if type(target) is Process:
                    if target.alive:
                        target._step(value)
                else:
                    target()
            if until is not None:
                self.now = until
            return self.now
        finally:
            self.events_executed += executed
            self._sync_obs()

    def peek(self) -> Optional[int]:
        """Timestamp of the next pending event, or None if idle."""
        return self._heap[0][0] if self._heap else None
