"""AES-128-GCM authenticated encryption (NIST SP 800-38D), from scratch.

Precursor protects control data in transit with AES-128 in GCM mode
(paper §4): the client seals ``(K_operation, key, oid)`` under the session
key established at attestation time, and the enclave's authenticated
decryption simultaneously verifies the client's identity and the message's
integrity.

GHASH is implemented over GF(2^128) with the standard bit-reflected
polynomial; CTR mode runs on :class:`repro.crypto.aes.AES128`.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AES128
from repro.errors import ConfigurationError, PrecursorError

__all__ = ["AesGcm", "GcmFailure", "ghash"]

_R = 0xE1000000000000000000000000000000


class GcmFailure(PrecursorError):
    """Authenticated decryption failed: wrong key, tampered data, or both."""


def _gf_mult(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) in GCM's bit-reflected basis."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h: int, data: bytes) -> int:
    """GHASH of ``data`` (already padded/structured by the caller) under
    hash subkey ``h``; returns a 128-bit integer."""
    y = 0
    for i in range(0, len(data), 16):
        block = data[i : i + 16]
        if len(block) < 16:
            block = block + b"\x00" * (16 - len(block))
        y = _gf_mult(y ^ int.from_bytes(block, "big"), h)
    return y


def _pad16(data: bytes) -> bytes:
    rem = len(data) % 16
    return data if rem == 0 else data + b"\x00" * (16 - rem)


class AesGcm:
    """AES-128-GCM with 96-bit IVs and 16-byte tags.

    ``seal``/``open`` are the authenticated encryption / decryption
    operations the paper writes as ``auth-encrypt`` / ``auth-decrypt``.
    """

    IV_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes):
        self._aes = AES128(key)
        # Hash subkey H = E_K(0^128).
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")

    def _counter_block(self, iv: bytes, counter: int) -> bytes:
        return iv + struct.pack(">I", counter)

    def _ctr(self, iv: bytes, data: bytes, start_counter: int = 2) -> bytes:
        out = bytearray()
        counter = start_counter
        encrypt = self._aes.encrypt_block
        for i in range(0, len(data), 16):
            keystream = encrypt(self._counter_block(iv, counter))
            chunk = data[i : i + 16]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
            counter += 1
        return bytes(out)

    def _tag(self, iv: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        lengths = struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        digest = ghash(self._h, _pad16(aad) + _pad16(ciphertext) + lengths)
        j0 = self._counter_block(iv, 1)
        ek_j0 = int.from_bytes(self._aes.encrypt_block(j0), "big")
        return (digest ^ ek_j0).to_bytes(16, "big")

    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(iv) != self.IV_SIZE:
            raise ConfigurationError(
                f"IV must be {self.IV_SIZE} bytes, got {len(iv)}"
            )
        ciphertext = self._ctr(iv, plaintext)
        return ciphertext + self._tag(iv, aad, ciphertext)

    def open(self, iv: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt ``ciphertext || tag``.

        Raises :class:`GcmFailure` on any authentication failure -- the
        plaintext is never released in that case.
        """
        if len(iv) != self.IV_SIZE:
            raise ConfigurationError(
                f"IV must be {self.IV_SIZE} bytes, got {len(iv)}"
            )
        if len(sealed) < self.TAG_SIZE:
            raise GcmFailure("message shorter than the authentication tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        expected = self._tag(iv, aad, ciphertext)
        # Constant-time comparison: accumulate differences before deciding.
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff != 0:
            raise GcmFailure("authentication tag mismatch")
        return self._ctr(iv, ciphertext)

    def seal_many(self, items) -> list:
        """Seal a batch of ``(iv, plaintext, aad)`` triples, in order.

        The specification engine just loops -- the batch API exists so
        callers can hand a drained frame set to either engine; the fast
        engine's fused kernels (:meth:`FastAesGcm.seal_many`) are where
        batching actually pays.  Outputs are byte-identical to calling
        :meth:`seal` per item.
        """
        return [self.seal(iv, plaintext, aad) for iv, plaintext, aad in items]

    def open_many(self, items) -> list:
        """Open a batch of ``(iv, sealed, aad)`` triples, in order.

        Returns one entry per input: the plaintext, or ``None`` when
        that message failed authentication.  A tampered message never
        raises out of the batch -- its batch-mates still decrypt -- which
        is the isolation contract the batched server path relies on.
        """
        out = []
        for iv, sealed, aad in items:
            try:
                out.append(self.open(iv, sealed, aad))
            except GcmFailure:
                out.append(None)
        return out
