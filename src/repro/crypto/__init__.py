"""Cryptographic substrate.

Precursor's implementation (paper §4) uses:

- **Salsa20** (via Libsodium) for client-side payload encryption under
  per-operation one-time keys;
- **AES-128-GCM** (via the SGX SDK) for transport encryption of control
  data between client and enclave;
- **AES-128-CMAC** (``sgx_rijndael128_cmac_msg``) for the MAC over the
  encrypted payload.

This package implements all three from scratch in pure Python so the
functional layer enforces real confidentiality/integrity, and adds a
cycle-accurate :mod:`cost model <repro.crypto.costmodel>` that the
simulator charges instead of running the (slow) Python primitives on the
hot path.

Two interchangeable engines run the primitives (:mod:`repro.crypto.engine`):
``reference`` -- the readable spec implementations above -- and ``fast`` --
optimised kernels (:mod:`repro.crypto.fastcrypto`) with pair-table AES,
lane-parallel Salsa20 and table-driven GHASH.  Both produce byte-identical
output; select via ``$REPRO_CRYPTO_ENGINE``, :func:`set_default_engine`
or the ``engine=`` argument threaded through providers and key generators.
"""

from repro.crypto.aes import AES128
from repro.crypto.cmac import aes_cmac
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.engine import (
    CryptoEngine,
    available_engines,
    default_engine,
    get_engine,
    parity_check,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.crypto.gcm import AesGcm, GcmFailure
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.crypto.provider import CryptoProvider, SealedMessage

__all__ = [
    "AES128",
    "aes_cmac",
    "AesGcm",
    "GcmFailure",
    "KeyGenerator",
    "SessionKey",
    "CryptoProvider",
    "SealedMessage",
    "CryptoCostModel",
    "CryptoEngine",
    "available_engines",
    "default_engine",
    "get_engine",
    "parity_check",
    "resolve_engine",
    "set_default_engine",
    "use_engine",
]
