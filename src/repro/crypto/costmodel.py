"""Cycle-cost model for cryptographic primitives.

The simulator charges these costs instead of executing the (slow)
pure-Python primitives on its hot path.  The constants model the
hardware-accelerated SGX SDK 2.9 implementations on the paper's testbed and
are calibrated so the Figure 1 curve is reproduced:

- AES-GCM throughput is dominated by a fixed per-call overhead for small
  buffers (key schedule, J0, tag finalisation inside the enclave) and by a
  per-byte cost for large ones;
- at <= 1 KiB buffers the decrypt+encrypt loop sustains ~36 % less
  throughput than the 40 Gbit/s line rate; by 32 KiB it approaches it.

All methods return **cycles** (floats); convert with
:func:`repro.sim.stats.cycles_to_ns` at a machine's clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CryptoCostModel"]


@dataclass(frozen=True)
class CryptoCostModel:
    """Per-primitive cycle costs: ``setup + per_byte * nbytes``.

    Defaults are fitted to Figure 1 (see module docstring); tests pin the
    resulting curve shape rather than individual constants.
    """

    #: Fixed cycles per AES-GCM call (key schedule, IV processing, tag).
    gcm_setup_cycles: float = 1700.0
    #: Marginal cycles per processed byte for AES-GCM (AES-NI + PCLMUL).
    gcm_per_byte_cycles: float = 2.75
    #: Fixed cycles per AES-CMAC call.
    cmac_setup_cycles: float = 300.0
    #: Marginal cycles per byte for AES-CMAC.
    cmac_per_byte_cycles: float = 1.3
    #: Fixed cycles per Salsa20 call (client-side, Libsodium).
    salsa_setup_cycles: float = 200.0
    #: Marginal cycles per byte for Salsa20 without SIMD batching.
    salsa_per_byte_cycles: float = 3.5
    #: Cycles per byte for a plain memcpy (cache-resident).
    memcpy_per_byte_cycles: float = 0.12

    def __post_init__(self) -> None:
        for name in (
            "gcm_setup_cycles",
            "gcm_per_byte_cycles",
            "cmac_setup_cycles",
            "cmac_per_byte_cycles",
            "salsa_setup_cycles",
            "salsa_per_byte_cycles",
            "memcpy_per_byte_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    # -- primitive costs ----------------------------------------------------

    def gcm_seal_cycles(self, nbytes: int) -> float:
        """Cycles to AES-GCM-encrypt (and tag) ``nbytes``."""
        return self.gcm_setup_cycles + self.gcm_per_byte_cycles * nbytes

    def gcm_open_cycles(self, nbytes: int) -> float:
        """Cycles to AES-GCM-verify-and-decrypt ``nbytes``."""
        return self.gcm_setup_cycles + self.gcm_per_byte_cycles * nbytes

    def cmac_cycles(self, nbytes: int) -> float:
        """Cycles to CMAC ``nbytes``."""
        return self.cmac_setup_cycles + self.cmac_per_byte_cycles * nbytes

    def salsa_cycles(self, nbytes: int) -> float:
        """Cycles to Salsa20-process ``nbytes`` (client-side)."""
        return self.salsa_setup_cycles + self.salsa_per_byte_cycles * nbytes

    def memcpy_cycles(self, nbytes: int) -> float:
        """Cycles to copy ``nbytes`` within normal memory."""
        return self.memcpy_per_byte_cycles * nbytes

    # -- composite costs ------------------------------------------------------

    def server_reencrypt_cycles(self, nbytes: int) -> float:
        """Decrypt-then-encrypt of a buffer, i.e. one iteration of the
        server-encryption scheme Figure 1 measures."""
        return self.gcm_open_cycles(nbytes) + self.gcm_seal_cycles(nbytes)

    def reencrypt_throughput_mbps(
        self, nbytes: int, threads: float, ghz: float
    ) -> float:
        """Aggregate decrypt+encrypt throughput in MB/s (Figure 1 model).

        ``threads`` is the *effective* core count (hyper-threads yield less
        than a full core; callers pass e.g. 7.8 for 12 HT on 6 cores).
        """
        if nbytes <= 0:
            raise ConfigurationError(f"buffer size must be positive: {nbytes}")
        cycles_per_op = self.server_reencrypt_cycles(nbytes)
        ops_per_second = threads * ghz * 1e9 / cycles_per_op
        return ops_per_second * nbytes / 1e6
