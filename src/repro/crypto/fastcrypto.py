"""Optimised pure-Python crypto kernels (the ``fast`` engine's core).

These implement the exact same primitives as :mod:`repro.crypto.salsa20`,
:mod:`repro.crypto.aes`, :mod:`repro.crypto.gcm` and
:mod:`repro.crypto.cmac` -- byte-identical outputs, same error types --
but optimised for CPython instead of mirroring the specifications:

- **Salsa20**: multi-block messages run the 20-round core *once* for all
  blocks simultaneously, packing one 32-bit state word per block into
  64-bit lanes of a single wide Python integer (a poor man's SIMD: one
  ``+``/``^``/rotate on the wide integer advances every block at once;
  the 64-bit lane leaves headroom so per-lane 32-bit adds never carry
  across lanes).  Single blocks use a fully unrolled scalar core over
  sixteen local variables.  The plaintext/keystream XOR is one
  wide-integer operation instead of a per-byte generator.
- **AES-128**: each round is sixteen lookups in 256-entry byte-position
  tables, XORed on a 128-bit integer state.  The tables fuse SubBytes +
  ShiftRows + MixColumns per state-byte position (derived from the
  classic four 256-entry T-tables, pre-rotated to their output column),
  so a whole round is ``M0[b0]^M1[b1]^...^M15[b15]^rk``.  At a few
  hundred KB total they stay cache-resident under a real request mix,
  which beats wider two-byte "pair" tables (~50 MB) that thrash the
  cache on varied inputs.  They are key-independent, built lazily once
  per process, and shared by every key; the key schedule is expanded
  once per key and cached.  :func:`_ecb_many` runs a whole batch of
  independent blocks through one sweep with all table locals bound once
  (the batched server pipeline's seal/open kernels feed it every CTR
  counter block and GCM tag mask of a drained frame set).
- **GCM**: GHASH uses a per-key 256-entry multiplication table (Shoup's
  method, byte-at-a-time Horner with a shared 256-entry reduction
  table) instead of the spec's 128-iteration bit loop; CTR keystream
  blocks run on the block kernel and are XORed against the
  message with one wide-integer op.  ``seal_many``/``open_many`` batch
  whole message sets through :func:`_ecb_many` and a grouped GHASH
  pass, byte-identical to per-message ``seal``/``open``.
- **CMAC**: the AES key schedule and the RFC 4493 subkeys are derived
  once per key and cached, and the serial CBC chain is a single
  loop over the byte tables with the whole message pre-split
  into 128-bit words.

Everything stays within the Python standard library; the cross-engine
parity checks in :mod:`repro.crypto.engine` guarantee these kernels can
never silently diverge from the spec-mirroring reference code.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.crypto.aes import SBOX
from repro.crypto.gcm import GcmFailure
from repro.errors import ConfigurationError

__all__ = ["FastSalsa20", "FastAES128", "FastAesGcm", "FastCmac"]

_MASK32 = 0xFFFFFFFF
_MASK128 = (1 << 128) - 1

# ---------------------------------------------------------------------------
# AES-128 with byte-position round tables on a 128-bit integer state
# ---------------------------------------------------------------------------


def _build_t_tables() -> Tuple[tuple, tuple, tuple, tuple]:
    """Fuse SubBytes + ShiftRows + MixColumns into four lookup tables."""
    t0, t1, t2, t3 = [0] * 256, [0] * 256, [0] * 256, [0] * 256
    for x in range(256):
        e = SBOX[x]
        e2 = ((e << 1) ^ 0x11B if e & 0x80 else e << 1) & 0xFF
        e3 = e2 ^ e
        t0[x] = (e2 << 24) | (e << 16) | (e << 8) | e3
        t1[x] = (e3 << 24) | (e2 << 16) | (e << 8) | e
        t2[x] = (e << 24) | (e3 << 16) | (e2 << 8) | e
        t3[x] = (e << 24) | (e << 16) | (e3 << 8) | e2
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


_T0, _T1, _T2, _T3 = _build_t_tables()

# Byte-position round tables: with the state as one 128-bit integer
# (columns s0..s3 most significant first), byte position p (0 = most
# significant) contributes ``M[p][byte]`` to the next state, where
# ``M[p]`` folds SubBytes + ShiftRows + MixColumns for that position
# (derived from the classic T-tables, pre-rotated to its column's
# 32-bit slot), so one middle round is ``M0[b0]^M1[b1]^...^M15[b15]^rk``.
# The N tables do the same for the final round (SubBytes + ShiftRows
# only).  Thirty-two 256-entry tables of 128-bit integers come to a few
# hundred KB -- small enough to stay cache-resident under a real request
# mix, which on varied inputs beats wider tables that fuse two bytes
# per lookup but thrash the cache (measured ~2x per block).
_M0 = _M1 = _M2 = _M3 = _M4 = _M5 = _M6 = _M7 = None
_M8 = _M9 = _M10 = _M11 = _M12 = _M13 = _M14 = _M15 = None
_N0 = _N1 = _N2 = _N3 = _N4 = _N5 = _N6 = _N7 = None
_N8 = _N9 = _N10 = _N11 = _N12 = _N13 = _N14 = _N15 = None


def _ensure_round_tables() -> None:
    """Build the thirty-two 256-entry round tables once per process."""
    global _M0, _M1, _M2, _M3, _M4, _M5, _M6, _M7
    global _M8, _M9, _M10, _M11, _M12, _M13, _M14, _M15
    global _N0, _N1, _N2, _N3, _N4, _N5, _N6, _N7
    global _N8, _N9, _N10, _N11, _N12, _N13, _N14, _N15
    if _M0 is not None:
        return
    t_tables = (_T0, _T1, _T2, _T3)
    s = SBOX
    # Scatter of T0..T3 (and the final round's SBOX byte) for column 0;
    # columns 1..3 are the same tables rotated right by 32 bits each.
    mid_shifts = (96, 0, 32, 64)
    fin_shifts = (120, 16, 40, 64)
    mid = []
    fin = []
    for pos in range(16):
        col, within = divmod(pos, 4)
        rot = 32 * col
        inv = 128 - rot
        t = t_tables[within]
        mshift = mid_shifts[within]
        fshift = fin_shifts[within]
        mtab = [0] * 256
        ftab = [0] * 256
        for x in range(256):
            v = t[x] << mshift
            mtab[x] = ((v >> rot) | (v << inv)) & _MASK128
            fv = s[x] << fshift
            ftab[x] = ((fv >> rot) | (fv << inv)) & _MASK128
        mid.append(tuple(mtab))
        fin.append(tuple(ftab))
    (
        _M0, _M1, _M2, _M3, _M4, _M5, _M6, _M7,
        _M8, _M9, _M10, _M11, _M12, _M13, _M14, _M15,
    ) = mid
    (
        _N0, _N1, _N2, _N3, _N4, _N5, _N6, _N7,
        _N8, _N9, _N10, _N11, _N12, _N13, _N14, _N15,
    ) = fin


# Prebound callable for the hot block loops: skips the bound-method
# creation on every round.
_TOB = int.to_bytes

_RCON_WORDS = (
    0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
    0x20000000, 0x40000000, 0x80000000, 0x1B000000, 0x36000000,
)

# Key schedules are tiny (44 ints); cache them so re-keying a session
# cipher or re-MACing under the same key never re-expands.
_SCHEDULE_CACHE: dict = {}
_SCHEDULE_CACHE_MAX = 1024
_SCHEDULE128_CACHE: Dict[bytes, tuple] = {}


def _expand_key_words(key: bytes) -> List[int]:
    """FIPS-197 key expansion to 44 big-endian 32-bit words."""
    cached = _SCHEDULE_CACHE.get(key)
    if cached is not None:
        return cached
    s = SBOX
    w = list(struct.unpack(">4I", key))
    for i in range(4, 44):
        t = w[i - 1]
        if i % 4 == 0:
            # RotWord + SubWord + Rcon, on a 32-bit word.
            t = (
                (s[(t >> 16) & 0xFF] << 24)
                | (s[(t >> 8) & 0xFF] << 16)
                | (s[t & 0xFF] << 8)
                | s[(t >> 24) & 0xFF]
            ) ^ _RCON_WORDS[i // 4 - 1]
        w.append(w[i - 4] ^ t)
    if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
        _SCHEDULE_CACHE.clear()
    _SCHEDULE_CACHE[key] = w
    return w


def _expand_key_128(key: bytes) -> tuple:
    """The key schedule as eleven 128-bit round-key integers."""
    cached = _SCHEDULE128_CACHE.get(key)
    if cached is not None:
        return cached
    w = _expand_key_words(key)
    rk = tuple(
        (w[4 * r] << 96) | (w[4 * r + 1] << 64) | (w[4 * r + 2] << 32) | w[4 * r + 3]
        for r in range(11)
    )
    if len(_SCHEDULE128_CACHE) >= _SCHEDULE_CACHE_MAX:
        _SCHEDULE128_CACHE.clear()
    _SCHEDULE128_CACHE[key] = rk
    return rk


def _encrypt_int(rk: tuple, st: int) -> int:
    """One AES-128 block on a 128-bit integer state (``st`` is the raw
    plaintext block; this applies the ``rk[0]`` whitening itself)."""
    tb = _TOB
    st ^= rk[0]
    for r in rk[1:10]:
        w = tb(st, 16, "big")
        st = (
            _M0[w[0]] ^ _M1[w[1]] ^ _M2[w[2]] ^ _M3[w[3]]
            ^ _M4[w[4]] ^ _M5[w[5]] ^ _M6[w[6]] ^ _M7[w[7]]
            ^ _M8[w[8]] ^ _M9[w[9]] ^ _M10[w[10]] ^ _M11[w[11]]
            ^ _M12[w[12]] ^ _M13[w[13]] ^ _M14[w[14]] ^ _M15[w[15]]
            ^ r
        )
    w = tb(st, 16, "big")
    return (
        _N0[w[0]] ^ _N1[w[1]] ^ _N2[w[2]] ^ _N3[w[3]]
        ^ _N4[w[4]] ^ _N5[w[5]] ^ _N6[w[6]] ^ _N7[w[7]]
        ^ _N8[w[8]] ^ _N9[w[9]] ^ _N10[w[10]] ^ _N11[w[11]]
        ^ _N12[w[12]] ^ _N13[w[13]] ^ _N14[w[14]] ^ _N15[w[15]]
        ^ rk[10]
    )


def _ecb_many(rk: tuple, states) -> list:
    """AES-128 over a list of *independent* 128-bit integer states.

    The batch twin of :func:`_encrypt_int`: the thirty-two byte-table
    locals and the eleven round keys are bound once per call instead of
    once per block.  A drained frame set's CTR counter blocks and tag
    masks all flow through one sweep, which is where the batched
    seal/open kernels earn their keep.
    """
    tb = _TOB
    m0, m1, m2, m3 = _M0, _M1, _M2, _M3
    m4, m5, m6, m7 = _M4, _M5, _M6, _M7
    m8, m9, m10, m11 = _M8, _M9, _M10, _M11
    m12, m13, m14, m15 = _M12, _M13, _M14, _M15
    n0, n1, n2, n3 = _N0, _N1, _N2, _N3
    n4, n5, n6, n7 = _N4, _N5, _N6, _N7
    n8, n9, n10, n11 = _N8, _N9, _N10, _N11
    n12, n13, n14, n15 = _N12, _N13, _N14, _N15
    rk0 = rk[0]
    rounds = rk[1:10]
    rk10 = rk[10]
    out = []
    append = out.append
    for st in states:
        st ^= rk0
        for r in rounds:
            w = tb(st, 16, "big")
            st = (
                m0[w[0]] ^ m1[w[1]] ^ m2[w[2]] ^ m3[w[3]]
                ^ m4[w[4]] ^ m5[w[5]] ^ m6[w[6]] ^ m7[w[7]]
                ^ m8[w[8]] ^ m9[w[9]] ^ m10[w[10]] ^ m11[w[11]]
                ^ m12[w[12]] ^ m13[w[13]] ^ m14[w[14]] ^ m15[w[15]]
                ^ r
            )
        w = tb(st, 16, "big")
        append(
            n0[w[0]] ^ n1[w[1]] ^ n2[w[2]] ^ n3[w[3]]
            ^ n4[w[4]] ^ n5[w[5]] ^ n6[w[6]] ^ n7[w[7]]
            ^ n8[w[8]] ^ n9[w[9]] ^ n10[w[10]] ^ n11[w[11]]
            ^ n12[w[12]] ^ n13[w[13]] ^ n14[w[14]] ^ n15[w[15]]
            ^ rk10
        )
    return out


def _cbc_chain(rk: tuple, message: bytes, x: int = 0) -> int:
    """CBC-MAC chain over a block-aligned ``message``, fully unrolled.

    Returns the running 128-bit CBC state after absorbing every 16-byte
    block of ``message`` (which must be a multiple of 16 bytes long).
    This is the serial hot loop of CMAC: everything -- round keys, the
    thirty-two byte tables, the message as pre-combined 128-bit words --
    is a local.
    """
    tb = _TOB
    m0, m1, m2, m3 = _M0, _M1, _M2, _M3
    m4, m5, m6, m7 = _M4, _M5, _M6, _M7
    m8, m9, m10, m11 = _M8, _M9, _M10, _M11
    m12, m13, m14, m15 = _M12, _M13, _M14, _M15
    n0, n1, n2, n3 = _N0, _N1, _N2, _N3
    n4, n5, n6, n7 = _N4, _N5, _N6, _N7
    n8, n9, n10, n11 = _N8, _N9, _N10, _N11
    n12, n13, n14, n15 = _N12, _N13, _N14, _N15
    rk0 = rk[0]
    rounds = rk[1:10]
    # Folding rk0 into the final-round key keeps the chain whitened for
    # the next block without a separate XOR per block.
    r10_0 = rk[10] ^ rk0
    nb = len(message) // 16
    it = iter(struct.unpack(">%dQ" % (2 * nb), message))
    mwords = [(a << 64) | b for a, b in zip(it, it)]
    x ^= rk0
    for m in mwords:
        st = x ^ m
        for r in rounds:
            w = tb(st, 16, "big")
            st = (
                m0[w[0]] ^ m1[w[1]] ^ m2[w[2]] ^ m3[w[3]]
                ^ m4[w[4]] ^ m5[w[5]] ^ m6[w[6]] ^ m7[w[7]]
                ^ m8[w[8]] ^ m9[w[9]] ^ m10[w[10]] ^ m11[w[11]]
                ^ m12[w[12]] ^ m13[w[13]] ^ m14[w[14]] ^ m15[w[15]]
                ^ r
            )
        w = tb(st, 16, "big")
        x = (
            n0[w[0]] ^ n1[w[1]] ^ n2[w[2]] ^ n3[w[3]]
            ^ n4[w[4]] ^ n5[w[5]] ^ n6[w[6]] ^ n7[w[7]]
            ^ n8[w[8]] ^ n9[w[9]] ^ n10[w[10]] ^ n11[w[11]]
            ^ n12[w[12]] ^ n13[w[13]] ^ n14[w[14]] ^ n15[w[15]]
            ^ r10_0
        )
    return x ^ rk0


class FastAES128:
    """Pair-table AES-128 forward cipher; drop-in for :class:`AES128`."""

    BLOCK_SIZE = 16
    KEY_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != self.KEY_SIZE:
            raise ConfigurationError(
                f"AES-128 key must be 16 bytes, got {len(key)}"
            )
        _ensure_round_tables()
        self._rk = _expand_key_128(bytes(key))

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ConfigurationError(
                f"block must be 16 bytes, got {len(block)}"
            )
        return _encrypt_int(self._rk, int.from_bytes(block, "big")).to_bytes(
            16, "big"
        )


# ---------------------------------------------------------------------------
# GCM with table-driven GHASH
# ---------------------------------------------------------------------------

_R_POLY = 0xE1000000000000000000000000000000


def _mulx(v: int) -> int:
    """Multiply by the formal variable in GCM's bit-reflected basis."""
    return (v >> 1) ^ _R_POLY if v & 1 else v >> 1


def _build_reduction_table() -> tuple:
    """Key-independent table: ``R[b]`` = ``b`` shifted out by 8 bits,
    folded back through the GHASH reduction polynomial."""
    table = [0] * 256
    for b in range(256):
        v = b
        for _ in range(8):
            v = (v >> 1) ^ _R_POLY if v & 1 else v >> 1
        table[b] = v
    return tuple(table)


_RED8 = _build_reduction_table()


def _build_ghash_table(h: int) -> tuple:
    """Per-key table ``T[b]`` = (byte ``b`` as an 8-term polynomial) x H."""
    table = [0] * 256
    v = h
    table[0x80] = v
    for bit in (0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01):
        v = (v >> 1) ^ _R_POLY if v & 1 else v >> 1
        table[bit] = v
    for i in range(2, 256):
        if i & (i - 1):  # not a single bit: combine linearly
            lsb = i & -i
            table[i] = table[lsb] ^ table[i ^ lsb]
    return tuple(table)


class FastAesGcm:
    """AES-128-GCM, byte-compatible with :class:`repro.crypto.gcm.AesGcm`.

    The AES key schedule, the hash subkey H and the 256-entry GHASH
    multiplication table are all derived once at construction time, so a
    cached instance amortises every per-message key-setup cost the
    reference implementation pays on each seal/open.
    """

    IV_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes):
        self._aes = FastAES128(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._table = _build_ghash_table(h)

    def _ghash(self, data: bytes) -> int:
        table = self._table
        red = _RED8
        y = 0
        for i in range(0, len(data), 16):
            block = data[i : i + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            w = (y ^ int.from_bytes(block, "big")).to_bytes(16, "big")
            # Horner over the 16 bytes, most significant last.
            z = table[w[15]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[14]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[13]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[12]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[11]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[10]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[9]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[8]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[7]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[6]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[5]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[4]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[3]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[2]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[1]]
            z = (z >> 8) ^ red[z & 255] ^ table[w[0]]
            y = z
        return y

    def _ctr(self, iv: bytes, data: bytes, start_counter: int = 2) -> bytes:
        n = len(data)
        if n == 0:
            return b""
        rk = self._aes._rk
        enc = _encrypt_int
        base = (int.from_bytes(iv, "big") << 32) | start_counter
        keystream = b"".join(
            enc(rk, base + i).to_bytes(16, "big")
            for i in range((n + 15) // 16)
        )[:n]
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
        ).to_bytes(n, "big")

    def _tag(self, iv: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        pad_a = (-len(aad)) % 16
        pad_c = (-len(ciphertext)) % 16
        digest = self._ghash(
            aad
            + b"\x00" * pad_a
            + ciphertext
            + b"\x00" * pad_c
            + struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
        )
        ek_j0 = int.from_bytes(
            self._aes.encrypt_block(iv + b"\x00\x00\x00\x01"), "big"
        )
        return (digest ^ ek_j0).to_bytes(16, "big")

    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(iv) != self.IV_SIZE:
            raise ConfigurationError(
                f"IV must be {self.IV_SIZE} bytes, got {len(iv)}"
            )
        ciphertext = self._ctr(iv, plaintext)
        return ciphertext + self._tag(iv, aad, ciphertext)

    def open(self, iv: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt ``ciphertext || tag``; raises on tampering."""
        if len(iv) != self.IV_SIZE:
            raise ConfigurationError(
                f"IV must be {self.IV_SIZE} bytes, got {len(iv)}"
            )
        if len(sealed) < self.TAG_SIZE:
            raise GcmFailure("message shorter than the authentication tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        expected = self._tag(iv, aad, ciphertext)
        # Constant-time comparison: accumulate differences before deciding.
        diff = 0
        for a, b in zip(expected, tag):
            diff |= a ^ b
        if diff != 0:
            raise GcmFailure("authentication tag mismatch")
        return self._ctr(iv, ciphertext)

    def seal_many(self, items) -> list:
        """Seal a batch of ``(iv, plaintext, aad)`` triples, in order.

        Fused, phase-grouped kernel: the CTR pass runs over every
        message back-to-back while the AES pair tables are cache-hot,
        then the tag pass runs while the GHASH table is hot.  Nothing
        about the per-message math changes -- outputs are byte-identical
        to calling :meth:`seal` once per item -- but on a drained frame
        set the tables stop being evicted between messages, which is
        where the batched server path's crypto win comes from.
        """
        iv_size = self.IV_SIZE
        # Gather every AES block the whole batch needs -- each message's
        # CTR counter blocks plus its J0 tag mask -- and run them through
        # one _ecb_many sweep (locals and round keys bound once).
        states: list = []
        metas = []
        for iv, plaintext, aad in items:
            if len(iv) != iv_size:
                raise ConfigurationError(
                    f"IV must be {iv_size} bytes, got {len(iv)}"
                )
            n = len(plaintext)
            nblocks = (n + 15) // 16
            base = int.from_bytes(iv, "big") << 32
            states.extend(base + 2 + i for i in range(nblocks))
            states.append(base | 1)  # E_K(J0): the tag mask
            metas.append((aad, plaintext, n, nblocks))
        blocks = _ecb_many(self._aes._rk, states)
        # Phase 1: CTR encrypt every message back to back.  The keystream
        # is assembled as one wide integer (blocks shifted into place)
        # and truncated by a right shift -- no per-block to_bytes/join.
        staged = []
        pos = 0
        for aad, plaintext, n, nblocks in metas:
            if n:
                ks = 0
                for b in blocks[pos : pos + nblocks]:
                    ks = (ks << 128) | b
                ks >>= 8 * (16 * nblocks - n)
                ciphertext = (
                    int.from_bytes(plaintext, "big") ^ ks
                ).to_bytes(n, "big")
            else:
                ciphertext = b""
            staged.append((aad, ciphertext, blocks[pos + nblocks]))
            pos += nblocks + 1
        # Phase 2: all tags while the GHASH table is hot.
        ghash = self._ghash
        pack = struct.pack
        return [
            ciphertext
            + (
                ghash(
                    aad
                    + b"\x00" * ((-len(aad)) % 16)
                    + ciphertext
                    + b"\x00" * ((-len(ciphertext)) % 16)
                    + pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
                )
                ^ ek_j0
            ).to_bytes(16, "big")
            for aad, ciphertext, ek_j0 in staged
        ]

    def open_many(self, items) -> list:
        """Open a batch of ``(iv, sealed, aad)`` triples, in order.

        Phase-grouped like :meth:`seal_many`: all tags are verified
        first (GHASH table hot), then the surviving messages decrypt
        back-to-back (AES tables hot).  Returns the plaintext per entry,
        or ``None`` where authentication failed -- a tampered message
        never poisons its batch-mates.
        """
        iv_size = self.IV_SIZE
        tag_size = self.TAG_SIZE
        # One AES sweep for the whole batch: each message's J0 tag mask
        # followed by its CTR counter blocks.  Keystream computed for a
        # message that then fails authentication is simply discarded --
        # unauthenticated plaintext is never materialised, and on the
        # fault-free fast path every block is needed anyway.
        entries = []
        states: list = []
        for iv, sealed, aad in items:
            if len(iv) != iv_size:
                raise ConfigurationError(
                    f"IV must be {iv_size} bytes, got {len(iv)}"
                )
            if len(sealed) < tag_size:
                entries.append(None)
                continue
            ciphertext = sealed[:-tag_size]
            n = len(ciphertext)
            nblocks = (n + 15) // 16
            base = int.from_bytes(iv, "big") << 32
            states.append(base | 1)  # E_K(J0): the tag mask
            states.extend(base + 2 + i for i in range(nblocks))
            entries.append((ciphertext, sealed[-tag_size:], aad, n, nblocks))
        blocks = _ecb_many(self._aes._rk, states)
        # Verify every tag while the GHASH table is hot; decrypt the
        # survivors from the already-computed keystream.
        ghash = self._ghash
        pack = struct.pack
        out = []
        pos = 0
        for entry in entries:
            if entry is None:
                out.append(None)
                continue
            ciphertext, tag, aad, n, nblocks = entry
            ek_j0 = blocks[pos]
            expected = (
                ghash(
                    aad
                    + b"\x00" * ((-len(aad)) % 16)
                    + ciphertext
                    + b"\x00" * ((-len(ciphertext)) % 16)
                    + pack(">QQ", len(aad) * 8, n * 8)
                )
                ^ ek_j0
            ).to_bytes(16, "big")
            # Constant-time comparison, same as the scalar path.
            diff = 0
            for a, b in zip(expected, tag):
                diff |= a ^ b
            if diff != 0:
                out.append(None)
            elif n:
                ks = 0
                for b in blocks[pos + 1 : pos + 1 + nblocks]:
                    ks = (ks << 128) | b
                ks >>= 8 * (16 * nblocks - n)
                out.append(
                    (int.from_bytes(ciphertext, "big") ^ ks).to_bytes(n, "big")
                )
            else:
                out.append(b"")
            pos += nblocks + 1
        return out


# ---------------------------------------------------------------------------
# Salsa20 with 64-bit lanes: one wide integer advances every block at once
# ---------------------------------------------------------------------------

_SIGMA = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_TAU = (0x61707865, 0x3120646E, 0x79622D36, 0x6B206574)

# Per-lane-count constants for the wide-integer core: _ONES broadcasts a
# scalar to every 64-bit lane by multiplication; _RAMP is 0,1,2,... in
# successive lanes (sequential block counters).  Keyed by lane count.
_ONES: Dict[int, int] = {}
_RAMPS: Dict[int, int] = {}

# Upper bound on blocks processed per wide-integer pass; bounds the big
# integers to ~4 KB each while keeping per-pass fixed costs amortised.
_LANE_BATCH = 512


def _lane_ones(lanes: int) -> int:
    """``1`` in each 64-bit lane (broadcast multiplier)."""
    v = _ONES.get(lanes)
    if v is None:
        v = _ONES[lanes] = int.from_bytes(
            b"\x01\x00\x00\x00\x00\x00\x00\x00" * lanes, "little"
        )
    return v


def _lane_ramp(lanes: int) -> int:
    """``0, 1, 2, ...`` in successive 64-bit lanes."""
    v = _RAMPS.get(lanes)
    if v is None:
        acc = 0
        for b in range(lanes):
            acc |= b << (64 * b)
        v = _RAMPS[lanes] = acc
    return v


class FastSalsa20:
    """Salsa20 stream cipher, drop-in for :class:`repro.crypto.salsa20.Salsa20`.

    Multi-block keystream requests pack one 32-bit state word per block
    into the 64-bit lanes of a single wide integer and run the 20-round
    core once for every block simultaneously; single blocks use a fully
    unrolled scalar core.  ``encrypt`` XORs plaintext and keystream as
    two big integers.
    """

    NONCE_SIZE = 8
    KEY_SIZES = (16, 32)

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) not in self.KEY_SIZES:
            raise ConfigurationError(
                f"key must be 16 or 32 bytes, got {len(key)}"
            )
        if len(nonce) != self.NONCE_SIZE:
            raise ConfigurationError(
                f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}"
            )
        if len(key) == 32:
            k0 = struct.unpack("<4I", key[:16])
            k1 = struct.unpack("<4I", key[16:])
            const = _SIGMA
        else:
            k0 = struct.unpack("<4I", key)
            k1 = k0
            const = _TAU
        n0, n1 = struct.unpack("<2I", nonce)
        # Initial state, spec layout; positions 8/9 take the block counter.
        self._state = (
            const[0], k0[0], k0[1], k0[2],
            k0[3], const[1], n0, n1,
            0, 0, const[2], k1[0],
            k1[1], k1[2], k1[3], const[3],
        )

    def _scalar_block(self, counter: int) -> bytes:
        """One 64-byte keystream block via the unrolled scalar core."""
        M = _MASK32
        (s0, s1, s2, s3, s4, s5, s6, s7,
         _, _, s10, s11, s12, s13, s14, s15) = self._state
        s8 = counter & M
        s9 = (counter >> 32) & M
        x0, x1, x2, x3 = s0, s1, s2, s3
        x4, x5, x6, x7 = s4, s5, s6, s7
        x8, x9, x10, x11 = s8, s9, s10, s11
        x12, x13, x14, x15 = s12, s13, s14, s15
        for _ in range(10):
            # columnround
            t = (x0 + x12) & M; x4 ^= ((t << 7) | (t >> 25)) & M
            t = (x4 + x0) & M; x8 ^= ((t << 9) | (t >> 23)) & M
            t = (x8 + x4) & M; x12 ^= ((t << 13) | (t >> 19)) & M
            t = (x12 + x8) & M; x0 ^= ((t << 18) | (t >> 14)) & M
            t = (x5 + x1) & M; x9 ^= ((t << 7) | (t >> 25)) & M
            t = (x9 + x5) & M; x13 ^= ((t << 9) | (t >> 23)) & M
            t = (x13 + x9) & M; x1 ^= ((t << 13) | (t >> 19)) & M
            t = (x1 + x13) & M; x5 ^= ((t << 18) | (t >> 14)) & M
            t = (x10 + x6) & M; x14 ^= ((t << 7) | (t >> 25)) & M
            t = (x14 + x10) & M; x2 ^= ((t << 9) | (t >> 23)) & M
            t = (x2 + x14) & M; x6 ^= ((t << 13) | (t >> 19)) & M
            t = (x6 + x2) & M; x10 ^= ((t << 18) | (t >> 14)) & M
            t = (x15 + x11) & M; x3 ^= ((t << 7) | (t >> 25)) & M
            t = (x3 + x15) & M; x7 ^= ((t << 9) | (t >> 23)) & M
            t = (x7 + x3) & M; x11 ^= ((t << 13) | (t >> 19)) & M
            t = (x11 + x7) & M; x15 ^= ((t << 18) | (t >> 14)) & M
            # rowround
            t = (x0 + x3) & M; x1 ^= ((t << 7) | (t >> 25)) & M
            t = (x1 + x0) & M; x2 ^= ((t << 9) | (t >> 23)) & M
            t = (x2 + x1) & M; x3 ^= ((t << 13) | (t >> 19)) & M
            t = (x3 + x2) & M; x0 ^= ((t << 18) | (t >> 14)) & M
            t = (x5 + x4) & M; x6 ^= ((t << 7) | (t >> 25)) & M
            t = (x6 + x5) & M; x7 ^= ((t << 9) | (t >> 23)) & M
            t = (x7 + x6) & M; x4 ^= ((t << 13) | (t >> 19)) & M
            t = (x4 + x7) & M; x5 ^= ((t << 18) | (t >> 14)) & M
            t = (x10 + x9) & M; x11 ^= ((t << 7) | (t >> 25)) & M
            t = (x11 + x10) & M; x8 ^= ((t << 9) | (t >> 23)) & M
            t = (x8 + x11) & M; x9 ^= ((t << 13) | (t >> 19)) & M
            t = (x9 + x8) & M; x10 ^= ((t << 18) | (t >> 14)) & M
            t = (x15 + x14) & M; x12 ^= ((t << 7) | (t >> 25)) & M
            t = (x12 + x15) & M; x13 ^= ((t << 9) | (t >> 23)) & M
            t = (x13 + x12) & M; x14 ^= ((t << 13) | (t >> 19)) & M
            t = (x14 + x13) & M; x15 ^= ((t << 18) | (t >> 14)) & M
        return struct.pack(
            "<16I",
            (x0 + s0) & M, (x1 + s1) & M, (x2 + s2) & M, (x3 + s3) & M,
            (x4 + s4) & M, (x5 + s5) & M, (x6 + s6) & M, (x7 + s7) & M,
            (x8 + s8) & M, (x9 + s9) & M, (x10 + s10) & M, (x11 + s11) & M,
            (x12 + s12) & M, (x13 + s13) & M, (x14 + s14) & M, (x15 + s15) & M,
        )

    def _lane_blocks(self, counter: int, lanes: int) -> bytes:
        """``lanes`` consecutive 64-byte blocks via the wide-integer core.

        Each of the sixteen Salsa20 state words becomes a wide integer
        with that word's value for block ``counter + b`` in 64-bit lane
        ``b``.  32-bit adds cannot carry past bit 33, so lanes never
        interfere; one add/xor/rotate on the wide integer is one SIMD
        instruction across every block.
        """
        M32 = _MASK32
        B = _lane_ones(lanes)
        M = M32 * B
        (w0, w1, w2, w3, w4, w5, w6, w7,
         _, _, w10, w11, w12, w13, w14, w15) = self._state
        s0 = w0 * B; s1 = w1 * B; s2 = w2 * B; s3 = w3 * B
        s4 = w4 * B; s5 = w5 * B; s6 = w6 * B; s7 = w7 * B
        s10 = w10 * B; s11 = w11 * B; s12 = w12 * B; s13 = w13 * B
        s14 = w14 * B; s15 = w15 * B
        if counter + lanes <= (1 << 32):
            # Sequential counters all share a zero high word.
            s8 = counter * B + _lane_ramp(lanes)
            s9 = 0
        else:
            s8 = 0
            s9 = 0
            for b in range(lanes):
                c = counter + b
                s8 |= (c & M32) << (64 * b)
                s9 |= ((c >> 32) & M32) << (64 * b)
        x0, x1, x2, x3 = s0, s1, s2, s3
        x4, x5, x6, x7 = s4, s5, s6, s7
        x8, x9, x10, x11 = s8, s9, s10, s11
        x12, x13, x14, x15 = s12, s13, s14, s15
        for _ in range(10):
            # columnround
            t = (x0 + x12) & M; x4 ^= ((t << 7) | (t >> 25)) & M
            t = (x4 + x0) & M; x8 ^= ((t << 9) | (t >> 23)) & M
            t = (x8 + x4) & M; x12 ^= ((t << 13) | (t >> 19)) & M
            t = (x12 + x8) & M; x0 ^= ((t << 18) | (t >> 14)) & M
            t = (x5 + x1) & M; x9 ^= ((t << 7) | (t >> 25)) & M
            t = (x9 + x5) & M; x13 ^= ((t << 9) | (t >> 23)) & M
            t = (x13 + x9) & M; x1 ^= ((t << 13) | (t >> 19)) & M
            t = (x1 + x13) & M; x5 ^= ((t << 18) | (t >> 14)) & M
            t = (x10 + x6) & M; x14 ^= ((t << 7) | (t >> 25)) & M
            t = (x14 + x10) & M; x2 ^= ((t << 9) | (t >> 23)) & M
            t = (x2 + x14) & M; x6 ^= ((t << 13) | (t >> 19)) & M
            t = (x6 + x2) & M; x10 ^= ((t << 18) | (t >> 14)) & M
            t = (x15 + x11) & M; x3 ^= ((t << 7) | (t >> 25)) & M
            t = (x3 + x15) & M; x7 ^= ((t << 9) | (t >> 23)) & M
            t = (x7 + x3) & M; x11 ^= ((t << 13) | (t >> 19)) & M
            t = (x11 + x7) & M; x15 ^= ((t << 18) | (t >> 14)) & M
            # rowround
            t = (x0 + x3) & M; x1 ^= ((t << 7) | (t >> 25)) & M
            t = (x1 + x0) & M; x2 ^= ((t << 9) | (t >> 23)) & M
            t = (x2 + x1) & M; x3 ^= ((t << 13) | (t >> 19)) & M
            t = (x3 + x2) & M; x0 ^= ((t << 18) | (t >> 14)) & M
            t = (x5 + x4) & M; x6 ^= ((t << 7) | (t >> 25)) & M
            t = (x6 + x5) & M; x7 ^= ((t << 9) | (t >> 23)) & M
            t = (x7 + x6) & M; x4 ^= ((t << 13) | (t >> 19)) & M
            t = (x4 + x7) & M; x5 ^= ((t << 18) | (t >> 14)) & M
            t = (x10 + x9) & M; x11 ^= ((t << 7) | (t >> 25)) & M
            t = (x11 + x10) & M; x8 ^= ((t << 9) | (t >> 23)) & M
            t = (x8 + x11) & M; x9 ^= ((t << 13) | (t >> 19)) & M
            t = (x9 + x8) & M; x10 ^= ((t << 18) | (t >> 14)) & M
            t = (x15 + x14) & M; x12 ^= ((t << 7) | (t >> 25)) & M
            t = (x12 + x15) & M; x13 ^= ((t << 9) | (t >> 23)) & M
            t = (x13 + x12) & M; x14 ^= ((t << 13) | (t >> 19)) & M
            t = (x14 + x13) & M; x15 ^= ((t << 18) | (t >> 14)) & M
        # Feedforward, then pack adjacent word pairs so every 64-bit lane
        # holds 8 consecutive output bytes of its block.
        p0 = ((x0 + s0) & M) | (((x1 + s1) & M) << 32)
        p1 = ((x2 + s2) & M) | (((x3 + s3) & M) << 32)
        p2 = ((x4 + s4) & M) | (((x5 + s5) & M) << 32)
        p3 = ((x6 + s6) & M) | (((x7 + s7) & M) << 32)
        p4 = ((x8 + s8) & M) | (((x9 + s9) & M) << 32)
        p5 = ((x10 + s10) & M) | (((x11 + s11) & M) << 32)
        p6 = ((x12 + s12) & M) | (((x13 + s13) & M) << 32)
        p7 = ((x14 + s14) & M) | (((x15 + s15) & M) << 32)
        # Transpose the 8 x lanes matrix of 8-byte cells into per-block
        # order: unpack each register into per-lane 64-bit words, then
        # re-pack interleaved (struct does the byte shuffling in C).
        fmt = "<%dQ" % lanes
        unpack = struct.unpack
        flat = [
            v
            for tup in zip(
                unpack(fmt, p0.to_bytes(8 * lanes, "little")),
                unpack(fmt, p1.to_bytes(8 * lanes, "little")),
                unpack(fmt, p2.to_bytes(8 * lanes, "little")),
                unpack(fmt, p3.to_bytes(8 * lanes, "little")),
                unpack(fmt, p4.to_bytes(8 * lanes, "little")),
                unpack(fmt, p5.to_bytes(8 * lanes, "little")),
                unpack(fmt, p6.to_bytes(8 * lanes, "little")),
                unpack(fmt, p7.to_bytes(8 * lanes, "little")),
            )
            for v in tup
        ]
        return struct.pack("<%dQ" % (8 * lanes), *flat)

    def keystream(self, length: int, counter: int = 0) -> bytes:
        """Generate ``length`` keystream bytes starting at block ``counter``."""
        if length < 0:
            raise ConfigurationError(f"negative length: {length}")
        if length == 0:
            return b""
        total = (length + 63) // 64
        if total == 1:
            return self._scalar_block(counter)[:length]
        pieces = []
        done = 0
        while done < total:
            lanes = min(total - done, _LANE_BATCH)
            pieces.append(self._lane_blocks(counter + done, lanes))
            done += lanes
        return b"".join(pieces)[:length]

    def encrypt(self, plaintext: bytes, counter: int = 0) -> bytes:
        """XOR ``plaintext`` with the keystream; decryption is identical."""
        n = len(plaintext)
        if n == 0:
            return b""
        stream = self.keystream(n, counter)
        return (
            int.from_bytes(plaintext, "little") ^ int.from_bytes(stream, "little")
        ).to_bytes(n, "little")

    # Stream ciphers are symmetric: decrypt is the same operation.
    decrypt = encrypt


# ---------------------------------------------------------------------------
# CMAC with cached subkeys on the pair-table chain
# ---------------------------------------------------------------------------


class FastCmac:
    """AES-128-CMAC with the key schedule and RFC 4493 subkeys cached.

    One instance per (folded) key; :meth:`mac` then runs the serial CBC
    chain of :func:`_cbc_chain` -- one unrolled pair-table AES block per
    16 message bytes and nothing else.
    """

    BLOCK = 16

    def __init__(self, key: bytes):
        if len(key) == 32:
            key = (
                int.from_bytes(key[:16], "big") ^ int.from_bytes(key[16:], "big")
            ).to_bytes(16, "big")
        elif len(key) != 16:
            raise ConfigurationError(
                f"CMAC key must be 16 or 32 bytes, got {len(key)}"
            )
        self._aes = FastAES128(key)
        self._rk = self._aes._rk
        l = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        k1 = ((l << 1) & _MASK128) ^ (0x87 if l >> 127 else 0)
        k2 = ((k1 << 1) & _MASK128) ^ (0x87 if k1 >> 127 else 0)
        self._k1 = k1
        self._k2 = k2

    def mac(self, message: bytes) -> bytes:
        """Compute the 16-byte AES-CMAC of ``message``."""
        n = len(message)
        n_blocks = max(1, (n + 15) // 16)
        last = message[(n_blocks - 1) * 16 :]
        if n > 0 and n % 16 == 0:
            last_int = int.from_bytes(last, "big") ^ self._k1
        else:
            padded = last + b"\x80" + b"\x00" * (15 - len(last))
            last_int = int.from_bytes(padded, "big") ^ self._k2
        rk = self._rk
        x = _cbc_chain(rk, message[: (n_blocks - 1) * 16])
        return _encrypt_int(rk, x ^ last_int).to_bytes(16, "big")
