"""Salsa20 stream cipher (Bernstein, 2005), as used by Libsodium.

Precursor clients encrypt payload values with Salsa20 under a freshly
generated 256-bit one-time key (paper §4, "Security functions").  This is a
from-scratch implementation of the full cipher: quarterround, rowround,
columnround, doubleround, the Salsa20 hash (core) function, expansion for
256-bit and 128-bit keys, and the keystream/XOR encryption mode with a
64-bit nonce and 64-bit block counter.

The functions mirror the structure of the specification so they can be
checked against the spec's published round-level test vectors.
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import ConfigurationError

__all__ = [
    "quarterround",
    "rowround",
    "columnround",
    "doubleround",
    "salsa20_core",
    "salsa20_expand",
    "Salsa20",
]

_MASK = 0xFFFFFFFF

# "expand 32-byte k" / "expand 16-byte k" constants, as four little-endian
# 32-bit words each.
_SIGMA = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
_TAU = (0x61707865, 0x3120646E, 0x79622D36, 0x6B206574)


def _rotl32(value: int, count: int) -> int:
    value &= _MASK
    return ((value << count) & _MASK) | (value >> (32 - count))


def quarterround(y0: int, y1: int, y2: int, y3: int) -> tuple:
    """The Salsa20 quarterround function on four 32-bit words."""
    z1 = y1 ^ _rotl32(y0 + y3, 7)
    z2 = y2 ^ _rotl32(z1 + y0, 9)
    z3 = y3 ^ _rotl32(z2 + z1, 13)
    z0 = y0 ^ _rotl32(z3 + z2, 18)
    return z0, z1, z2, z3


def rowround(y: List[int]) -> List[int]:
    """Apply quarterround to each row of the 4x4 state matrix."""
    z = [0] * 16
    z[0], z[1], z[2], z[3] = quarterround(y[0], y[1], y[2], y[3])
    z[5], z[6], z[7], z[4] = quarterround(y[5], y[6], y[7], y[4])
    z[10], z[11], z[8], z[9] = quarterround(y[10], y[11], y[8], y[9])
    z[15], z[12], z[13], z[14] = quarterround(y[15], y[12], y[13], y[14])
    return z


def columnround(x: List[int]) -> List[int]:
    """Apply quarterround to each column of the 4x4 state matrix."""
    y = [0] * 16
    y[0], y[4], y[8], y[12] = quarterround(x[0], x[4], x[8], x[12])
    y[5], y[9], y[13], y[1] = quarterround(x[5], x[9], x[13], x[1])
    y[10], y[14], y[2], y[6] = quarterround(x[10], x[14], x[2], x[6])
    y[15], y[3], y[7], y[11] = quarterround(x[15], x[3], x[7], x[11])
    return y


def doubleround(x: List[int]) -> List[int]:
    """One double round: a columnround followed by a rowround."""
    return rowround(columnround(x))


def salsa20_core(state: List[int], rounds: int = 20) -> bytes:
    """The Salsa20 hash function: 16 words in, 64 bytes out.

    Runs ``rounds`` rounds (must be even; the standard cipher uses 20) and
    adds the input state to the output words.
    """
    if len(state) != 16:
        raise ConfigurationError(f"state must have 16 words, got {len(state)}")
    if rounds % 2 != 0 or rounds <= 0:
        raise ConfigurationError(f"rounds must be positive and even: {rounds}")
    x = list(state)
    for _ in range(rounds // 2):
        # Inlined doubleround for speed on the keystream path.
        x = rowround(columnround(x))
    return struct.pack(
        "<16I", *((x[i] + state[i]) & _MASK for i in range(16))
    )


def salsa20_expand(key: bytes, nonce_and_counter: bytes) -> bytes:
    """Salsa20 expansion function: key + 16-byte (nonce||counter) -> block.

    Supports 32-byte keys (sigma constants) and 16-byte keys (tau constants,
    key repeated), exactly as in the specification.
    """
    if len(nonce_and_counter) != 16:
        raise ConfigurationError("nonce||counter must be 16 bytes")
    if len(key) == 32:
        k0 = struct.unpack("<4I", key[:16])
        k1 = struct.unpack("<4I", key[16:])
        const = _SIGMA
    elif len(key) == 16:
        k0 = struct.unpack("<4I", key)
        k1 = k0
        const = _TAU
    else:
        raise ConfigurationError(f"key must be 16 or 32 bytes, got {len(key)}")
    n = struct.unpack("<4I", nonce_and_counter)
    state = [
        const[0], k0[0], k0[1], k0[2],
        k0[3], const[1], n[0], n[1],
        n[2], n[3], const[2], k1[0],
        k1[1], k1[2], k1[3], const[3],
    ]
    return salsa20_core(state)


class Salsa20:
    """Salsa20 in stream-cipher (XOR keystream) mode.

    Parameters
    ----------
    key:
        16- or 32-byte secret key.  Precursor uses 32-byte one-time keys.
    nonce:
        8-byte nonce.  Must never repeat under the same key; Precursor's
        one-time keys make any fixed nonce safe, but callers should still
        pass fresh nonces when a key encrypts more than one message.
    """

    NONCE_SIZE = 8
    KEY_SIZES = (16, 32)

    def __init__(self, key: bytes, nonce: bytes):
        if len(key) not in self.KEY_SIZES:
            raise ConfigurationError(
                f"key must be 16 or 32 bytes, got {len(key)}"
            )
        if len(nonce) != self.NONCE_SIZE:
            raise ConfigurationError(
                f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}"
            )
        self._key = bytes(key)
        self._nonce = bytes(nonce)

    def keystream(self, length: int, counter: int = 0) -> bytes:
        """Generate ``length`` keystream bytes starting at block ``counter``."""
        if length < 0:
            raise ConfigurationError(f"negative length: {length}")
        blocks = []
        produced = 0
        while produced < length:
            block_input = self._nonce + struct.pack("<Q", counter)
            blocks.append(salsa20_expand(self._key, block_input))
            produced += 64
            counter += 1
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, counter: int = 0) -> bytes:
        """XOR ``plaintext`` with the keystream; decryption is identical."""
        stream = self.keystream(len(plaintext), counter)
        # One wide-integer XOR instead of a per-byte generator: Python
        # big-int XOR runs at memcpy-like speed, so this removes the
        # dominant per-byte overhead of the combine step.
        n = len(plaintext)
        return (
            int.from_bytes(plaintext, "little")
            ^ int.from_bytes(stream, "little")
        ).to_bytes(n, "little")

    # Stream ciphers are symmetric: decrypt is the same operation.
    decrypt = encrypt
