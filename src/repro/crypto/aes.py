"""AES-128 block cipher (FIPS-197), from scratch.

Only the forward cipher is implemented: every AES mode used in this
repository (GCM's CTR encryption, GHASH's subkey derivation, CMAC) needs
block *encryption* only, which keeps the trusted-code-base analogue small --
mirroring how Precursor's enclave links only the SDK primitives it needs.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError

__all__ = ["AES128", "SBOX"]


def _build_sbox() -> bytes:
    """Construct the AES S-box from first principles (GF(2^8) inverse +
    affine map), so there is no 256-entry magic table to mistype."""
    # Multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8) with the AES polynomial 0x11B
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(b: int) -> int:
        return 0 if b == 0 else exp[255 - log[b]]

    sbox = bytearray(256)
    for i in range(256):
        c = inv(i)
        # affine transformation
        s = c
        for shift in (1, 2, 3, 4):
            s ^= ((c << shift) | (c >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63
    return bytes(sbox)


SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(b: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8)."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


class AES128:
    """AES with a 128-bit key; encrypts one 16-byte block at a time."""

    BLOCK_SIZE = 16
    KEY_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes):
        if len(key) != self.KEY_SIZE:
            raise ConfigurationError(
                f"AES-128 key must be 16 bytes, got {len(key)}"
            )
        self._round_keys = self._expand_key(bytes(key))

    @staticmethod
    def _expand_key(key: bytes) -> List[bytes]:
        """FIPS-197 key schedule producing 11 round keys of 16 bytes."""
        words = [key[i : i + 4] for i in range(0, 16, 4)]
        for i in range(4, 4 * (AES128.ROUNDS + 1)):
            temp = words[i - 1]
            if i % 4 == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(SBOX[b] for b in rotated)
                temp = bytes(
                    (temp[0] ^ _RCON[i // 4 - 1],) + tuple(temp[1:])
                )
            # Word-wide XOR: one 32-bit int op instead of four byte ops.
            words.append(
                (
                    int.from_bytes(words[i - 4], "big")
                    ^ int.from_bytes(temp, "big")
                ).to_bytes(4, "big")
            )
        return [
            b"".join(words[4 * r : 4 * r + 4])
            for r in range(AES128.ROUNDS + 1)
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ConfigurationError(
                f"block must be 16 bytes, got {len(block)}"
            )
        state = bytearray(a ^ b for a, b in zip(block, self._round_keys[0]))
        for rnd in range(1, self.ROUNDS):
            state = self._sub_shift(state)
            state = self._mix_columns(state)
            key = self._round_keys[rnd]
            for i in range(16):
                state[i] ^= key[i]
        state = self._sub_shift(state)
        key = self._round_keys[self.ROUNDS]
        for i in range(16):
            state[i] ^= key[i]
        return bytes(state)

    @staticmethod
    def _sub_shift(state: bytearray) -> bytearray:
        """SubBytes followed by ShiftRows (column-major state layout)."""
        s = SBOX
        return bytearray(
            (
                s[state[0]], s[state[5]], s[state[10]], s[state[15]],
                s[state[4]], s[state[9]], s[state[14]], s[state[3]],
                s[state[8]], s[state[13]], s[state[2]], s[state[7]],
                s[state[12]], s[state[1]], s[state[6]], s[state[11]],
            )
        )

    @staticmethod
    def _mix_columns(state: bytearray) -> bytearray:
        out = bytearray(16)
        for c in range(4):
            a0, a1, a2, a3 = state[4 * c : 4 * c + 4]
            x0, x1, x2, x3 = _xtime(a0), _xtime(a1), _xtime(a2), _xtime(a3)
            out[4 * c + 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
            out[4 * c + 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
        return out
