"""AES-128-CMAC (RFC 4493 / NIST SP 800-38B), from scratch.

Precursor computes a CMAC over the client-encrypted value
(``sgx_rijndael128_cmac_msg`` in the paper's implementation, §4).  The
client generates the MAC before a ``put()``; after a ``get()`` it recomputes
the MAC over the fetched ciphertext with the one-time key from the control
data and compares -- this is what detects tampering with the server's
untrusted memory.
"""

from __future__ import annotations

from repro.crypto.aes import AES128
from repro.errors import ConfigurationError

__all__ = ["aes_cmac", "cmac_verify"]

_BLOCK = 16
_RB = 0x87


def _shift_left_one(block: bytes) -> bytes:
    """Left-shift a 16-byte string by one bit."""
    as_int = int.from_bytes(block, "big")
    shifted = (as_int << 1) & ((1 << 128) - 1)
    return shifted.to_bytes(16, "big")


def _generate_subkeys(aes: AES128) -> tuple:
    """RFC 4493 subkey generation: K1 for full final blocks, K2 otherwise."""
    l = aes.encrypt_block(b"\x00" * _BLOCK)
    k1 = _shift_left_one(l)
    if l[0] & 0x80:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2 = _shift_left_one(k1)
    if k1[0] & 0x80:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte AES-CMAC of ``message`` under ``key``.

    Keys longer than 16 bytes (Precursor's one-time keys are 32 bytes for
    Salsa20) are folded to 16 bytes by XORing their halves, mirroring how a
    single client secret feeds both the stream cipher and the MAC without a
    second key exchange.
    """
    if len(key) == 32:
        key = bytes(a ^ b for a, b in zip(key[:16], key[16:]))
    elif len(key) != 16:
        raise ConfigurationError(
            f"CMAC key must be 16 or 32 bytes, got {len(key)}"
        )
    aes = AES128(key)
    k1, k2 = _generate_subkeys(aes)

    n_blocks = max(1, (len(message) + _BLOCK - 1) // _BLOCK)
    complete = len(message) > 0 and len(message) % _BLOCK == 0

    last = message[(n_blocks - 1) * _BLOCK :]
    if complete:
        last = bytes(a ^ b for a, b in zip(last, k1))
    else:
        padded = last + b"\x80" + b"\x00" * (_BLOCK - len(last) - 1)
        last = bytes(a ^ b for a, b in zip(padded, k2))

    x = b"\x00" * _BLOCK
    for i in range(n_blocks - 1):
        block = message[i * _BLOCK : (i + 1) * _BLOCK]
        x = aes.encrypt_block(bytes(a ^ b for a, b in zip(x, block)))
    return aes.encrypt_block(bytes(a ^ b for a, b in zip(x, last)))


def cmac_verify(key: bytes, message: bytes, mac: bytes) -> bool:
    """Constant-time verification of an AES-CMAC tag."""
    expected = aes_cmac(key, message)
    if len(mac) != len(expected):
        return False
    diff = 0
    for a, b in zip(expected, mac):
        diff |= a ^ b
    return diff == 0
