"""High-level crypto operations used by clients and servers.

:class:`CryptoProvider` bundles the paper's two encryption paths:

- **payload path** (client-side only): Salsa20 encryption of the value
  under a one-time key plus an AES-CMAC over the ciphertext;
- **transport path** (client <-> enclave): AES-128-GCM authenticated
  encryption of control data under the session key
  (``auth-encrypt``/``auth-decrypt`` in the paper's notation, §3.4).

Both paths run on a pluggable :class:`~repro.crypto.engine.CryptoEngine`
(``reference`` or ``fast``; see :mod:`repro.crypto.engine`).  The engine
keeps a bounded per-key cache of GCM cipher objects, so sealing N
messages under one session key expands the AES key schedule once
instead of once per message.

Everything here runs real cryptography; the simulator never calls these on
its hot path (it charges the :class:`~repro.crypto.costmodel.CryptoCostModel`
instead), so correctness and performance modelling stay decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.engine import resolve_engine
from repro.crypto.gcm import GcmFailure
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.errors import AuthenticationError, IntegrityError

__all__ = ["CryptoProvider", "SealedMessage", "EncryptedPayload"]

# Salsa20 nonce used with one-time keys.  A fixed nonce is safe *only*
# because K_operation never encrypts more than one message (fresh key per
# put(), paper §3.3); re-keying is what provides uniqueness.
_ONE_TIME_NONCE = b"\x00" * 8


@dataclass(frozen=True)
class SealedMessage:
    """Transport-encrypted control data: IV plus GCM ciphertext-and-tag."""

    iv: bytes
    sealed: bytes

    def size(self) -> int:
        """Total bytes on the wire."""
        return len(self.iv) + len(self.sealed)


@dataclass(frozen=True)
class EncryptedPayload:
    """Client-encrypted value plus its MAC (the untrusted half of a request)."""

    ciphertext: bytes
    mac: bytes

    def size(self) -> int:
        """Total bytes on the wire / in untrusted memory."""
        return len(self.ciphertext) + len(self.mac)


class CryptoProvider:
    """Stateless facade over the payload and transport crypto paths.

    ``engine`` selects the crypto engine by name or instance; ``None``
    falls back to the key generator's engine and then the process-wide
    default (``$REPRO_CRYPTO_ENGINE`` or ``fast``).  The choice is
    resolved once at construction so a provider's behaviour never shifts
    mid-session.
    """

    def __init__(self, keygen: KeyGenerator = None, engine=None):
        self.keygen = keygen if keygen is not None else KeyGenerator()
        if engine is None:
            engine = getattr(self.keygen, "engine", None)
        self.engine = resolve_engine(engine)

    # -- payload path (one-time keys) -------------------------------------

    def payload_encrypt(self, k_operation: bytes, value: bytes) -> EncryptedPayload:
        """Encrypt ``value`` under a one-time key; MAC the ciphertext.

        Mirrors Algorithm 1, lines 2-4: ``*v = E(K_op, v)``,
        ``mac = MAC(K_op, *v)``.
        """
        engine = self.engine
        ciphertext = engine.salsa20_encrypt(k_operation, _ONE_TIME_NONCE, value)
        mac = engine.aes_cmac(k_operation, ciphertext)
        return EncryptedPayload(ciphertext=ciphertext, mac=mac)

    def payload_decrypt(self, k_operation: bytes, payload: EncryptedPayload) -> bytes:
        """Verify the MAC, then decrypt.  Raises on tampering.

        This is the client-side check after a ``get()``: recompute the MAC
        over the fetched ciphertext with the one-time key obtained from the
        (trusted) control data and compare (paper §3.7, "Query data").
        """
        engine = self.engine
        if not engine.cmac_verify(k_operation, payload.ciphertext, payload.mac):
            raise IntegrityError(
                "payload MAC mismatch: untrusted server memory was modified"
            )
        return engine.salsa20_encrypt(
            k_operation, _ONE_TIME_NONCE, payload.ciphertext
        )

    def payload_mac_valid(self, k_operation: bytes, payload: EncryptedPayload) -> bool:
        """Non-raising MAC check (used by the server-encryption variant)."""
        return self.engine.cmac_verify(
            k_operation, payload.ciphertext, payload.mac
        )

    # -- transport path (session keys) -------------------------------------

    def transport_seal(
        self, session: SessionKey, plaintext: bytes, aad: bytes = b""
    ) -> SealedMessage:
        """``auth-encrypt(K_session, plaintext)`` with a fresh per-session IV."""
        iv = session.next_iv()
        sealed = self.engine.gcm(session.key).seal(iv, plaintext, aad)
        return SealedMessage(iv=iv, sealed=sealed)

    def transport_open(
        self, session_key: bytes, message: SealedMessage, aad: bytes = b""
    ) -> bytes:
        """``auth-decrypt(K_session, message)``.

        Raises :class:`AuthenticationError` when the GCM tag does not
        verify -- the sender does not hold the session key, or the message
        was modified in flight.
        """
        try:
            return self.engine.gcm(session_key).open(
                message.iv, message.sealed, aad
            )
        except GcmFailure as exc:
            raise AuthenticationError(str(exc)) from exc

    def transport_seal_many(
        self, session: SessionKey, messages
    ) -> list:
        """Seal ``(plaintext, aad)`` pairs as one batch, in order.

        IVs are drawn from the session counter in submission order, so
        the resulting :class:`SealedMessage` list is byte-identical to
        calling :meth:`transport_seal` once per pair -- only the work is
        batched (the fast engine runs its fused phase-grouped kernels
        over the whole set).
        """
        staged = [
            (session.next_iv(), plaintext, aad) for plaintext, aad in messages
        ]
        sealed = self.engine.gcm(session.key).seal_many(staged)
        return [
            SealedMessage(iv=iv, sealed=blob)
            for (iv, _plaintext, _aad), blob in zip(staged, sealed)
        ]

    def transport_open_many(
        self, session_key: bytes, messages
    ) -> list:
        """Open ``(SealedMessage, aad)`` pairs as one batch, in order.

        Returns the plaintext per entry, or ``None`` where the GCM tag
        did not verify.  Unlike :meth:`transport_open` nothing raises on
        tamper: the batched server path must keep processing the intact
        batch-mates and fail only the poisoned frame.
        """
        return self.engine.gcm(session_key).open_many(
            [(message.iv, message.sealed, aad) for message, aad in messages]
        )
