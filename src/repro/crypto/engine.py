"""Pluggable crypto engines: ``reference`` (spec-mirroring) vs ``fast``.

Every cryptographic operation on Precursor's functional hot path --
Salsa20 payload encryption, AES-CMAC over ciphertext, AES-GCM transport
sealing -- goes through a :class:`CryptoEngine`.  Two engines ship:

- ``reference`` wraps the from-scratch, specification-mirroring modules
  (:mod:`~repro.crypto.salsa20`, :mod:`~repro.crypto.cmac`,
  :mod:`~repro.crypto.gcm`).  It is the ground truth the test vectors
  run against and stays deliberately readable.
- ``fast`` wraps the optimised kernels of
  :mod:`~repro.crypto.fastcrypto` (unrolled Salsa20 core, T-table AES,
  table-driven GHASH, cached CMAC subkeys).  Its outputs are
  byte-identical to the reference engine's -- :func:`parity_check`
  and the ``tests/test_crypto_engine.py`` matrix enforce this, so the
  two engines interoperate freely (seal with one, open with the other).

Both engines keep a bounded per-key cache of GCM cipher objects, which
fixes the historic per-message key-schedule rebuild: sealing N messages
under one session key now expands the AES key schedule (and, on the
fast engine, the GHASH table) exactly once.

Selection: :func:`default_engine` resolves, in order, an explicit
:func:`set_default_engine` call, the ``REPRO_CRYPTO_ENGINE`` environment
variable, and finally ``fast``.  :func:`use_engine` scopes an override
(the benchmark harness uses it to time both engines end to end).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.crypto import cmac as _cmac_module
from repro.crypto.fastcrypto import FastAesGcm, FastCmac, FastSalsa20
from repro.crypto.gcm import AesGcm
from repro.crypto.salsa20 import Salsa20
from repro.errors import ConfigurationError

__all__ = [
    "CryptoEngine",
    "ReferenceEngine",
    "FastEngine",
    "available_engines",
    "get_engine",
    "default_engine",
    "set_default_engine",
    "use_engine",
    "resolve_engine",
    "parity_check",
]

_ENV_VAR = "REPRO_CRYPTO_ENGINE"


class _KeyedCache:
    """A tiny bounded per-key object cache (sessions come and go)."""

    def __init__(self, factory, maxsize: int = 512):
        self._factory = factory
        self._maxsize = maxsize
        self._entries: Dict[bytes, object] = {}
        self._lock = threading.Lock()

    def get(self, key: bytes):
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        entry = self._factory(key)
        with self._lock:
            if len(self._entries) >= self._maxsize:
                self._entries.clear()
            self._entries[key] = entry
        return entry


class CryptoEngine:
    """Interface every engine implements; see the module docstring.

    Engines are stateless apart from bounded per-key caches, so one
    shared instance per engine name serves the whole process.
    """

    #: Registry name ("reference" / "fast").
    name = "abstract"

    def salsa20_encrypt(
        self, key: bytes, nonce: bytes, data: bytes, counter: int = 0
    ) -> bytes:
        """Salsa20 XOR-keystream encryption (decryption is identical)."""
        raise NotImplementedError

    def aes_cmac(self, key: bytes, message: bytes) -> bytes:
        """AES-128-CMAC of ``message`` (32-byte keys are XOR-folded)."""
        raise NotImplementedError

    def cmac_verify(self, key: bytes, message: bytes, mac: bytes) -> bool:
        """Constant-time AES-CMAC verification."""
        expected = self.aes_cmac(key, message)
        if len(mac) != len(expected):
            return False
        diff = 0
        for a, b in zip(expected, mac):
            diff |= a ^ b
        return diff == 0

    def gcm(self, key: bytes):
        """A cached AES-128-GCM cipher for ``key`` (``seal``/``open``)."""
        raise NotImplementedError


class ReferenceEngine(CryptoEngine):
    """The spec-mirroring primitives, with per-key GCM cipher caching."""

    name = "reference"

    def __init__(self):
        self._gcm_cache = _KeyedCache(AesGcm)

    def salsa20_encrypt(
        self, key: bytes, nonce: bytes, data: bytes, counter: int = 0
    ) -> bytes:
        """Salsa20 via the specification implementation."""
        return Salsa20(key, nonce).encrypt(data, counter)

    def aes_cmac(self, key: bytes, message: bytes) -> bytes:
        """RFC 4493 CMAC via the specification implementation."""
        return _cmac_module.aes_cmac(key, message)

    def gcm(self, key: bytes) -> AesGcm:
        """Cached :class:`~repro.crypto.gcm.AesGcm` for ``key``."""
        return self._gcm_cache.get(bytes(key))


class FastEngine(CryptoEngine):
    """The optimised kernels of :mod:`repro.crypto.fastcrypto`."""

    name = "fast"

    def __init__(self):
        self._gcm_cache = _KeyedCache(FastAesGcm)
        self._cmac_cache = _KeyedCache(FastCmac)

    def salsa20_encrypt(
        self, key: bytes, nonce: bytes, data: bytes, counter: int = 0
    ) -> bytes:
        """Salsa20 via the unrolled multi-block core."""
        return FastSalsa20(key, nonce).encrypt(data, counter)

    def aes_cmac(self, key: bytes, message: bytes) -> bytes:
        """CMAC with cached key schedule and subkeys."""
        return self._cmac_cache.get(bytes(key)).mac(message)

    def gcm(self, key: bytes) -> FastAesGcm:
        """Cached :class:`~repro.crypto.fastcrypto.FastAesGcm` for ``key``."""
        return self._gcm_cache.get(bytes(key))


_ENGINES = {
    ReferenceEngine.name: ReferenceEngine,
    FastEngine.name: FastEngine,
}
_INSTANCES: Dict[str, CryptoEngine] = {}
_DEFAULT_OVERRIDE: Optional[str] = None


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_ENGINES)


def get_engine(name: str) -> CryptoEngine:
    """The shared engine instance for ``name``; raises on unknown names."""
    try:
        factory = _ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown crypto engine {name!r} "
            f"(available: {', '.join(available_engines())})"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = factory()
    return instance


def default_engine() -> CryptoEngine:
    """The process-wide engine: override > ``$REPRO_CRYPTO_ENGINE`` > fast."""
    if _DEFAULT_OVERRIDE is not None:
        return get_engine(_DEFAULT_OVERRIDE)
    return get_engine(os.environ.get(_ENV_VAR) or FastEngine.name)


def set_default_engine(name: Optional[str]) -> None:
    """Pin the default engine (``None`` restores env-var resolution)."""
    global _DEFAULT_OVERRIDE
    if name is not None:
        get_engine(name)  # validate eagerly
    _DEFAULT_OVERRIDE = name


@contextmanager
def use_engine(name: str) -> Iterator[CryptoEngine]:
    """Scope the default engine to ``name`` for a ``with`` block."""
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    set_default_engine(name)
    try:
        yield get_engine(name)
    finally:
        _DEFAULT_OVERRIDE = previous


def resolve_engine(
    engine: Union[None, str, CryptoEngine]
) -> CryptoEngine:
    """Normalise an engine argument: instance, name, or None (default)."""
    if engine is None:
        return default_engine()
    if isinstance(engine, CryptoEngine):
        return engine
    return get_engine(engine)


def parity_check(seed: int = 2021, rounds: int = 8) -> List[str]:
    """Cross-engine parity self-check; returns failure descriptions.

    Encrypts with each engine and decrypts/verifies with the other over
    deterministic pseudo-random payload and transport messages, plus the
    canonical empty/short/block-aligned edge sizes.  An empty list means
    the fast path cannot have silently diverged from the reference.
    """
    import hashlib

    ref = get_engine("reference")
    fast = get_engine("fast")
    failures: List[str] = []

    def rand(tag: bytes, size: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < size:
            out.extend(
                hashlib.sha256(
                    tag + seed.to_bytes(8, "big") + counter.to_bytes(8, "big")
                ).digest()
            )
            counter += 1
        return bytes(out[:size])

    sizes = [0, 1, 15, 16, 17, 63, 64, 65, 256, 1024]
    for r in range(rounds):
        sizes.append(37 * (r + 1) + r)
    for size in sizes:
        tag = b"payload-%d" % size
        key32 = rand(tag + b"k", 32)
        nonce = rand(tag + b"n", 8)
        data = rand(tag + b"d", size)
        ct_ref = ref.salsa20_encrypt(key32, nonce, data)
        ct_fast = fast.salsa20_encrypt(key32, nonce, data)
        if ct_ref != ct_fast:
            failures.append(f"salsa20 ciphertext differs at {size} B")
        if fast.salsa20_encrypt(key32, nonce, ct_ref) != data:
            failures.append(f"fast failed to decrypt reference at {size} B")
        mac_ref = ref.aes_cmac(key32, ct_ref)
        mac_fast = fast.aes_cmac(key32, ct_fast)
        if mac_ref != mac_fast:
            failures.append(f"cmac differs at {size} B")
        if not fast.cmac_verify(key32, ct_ref, mac_ref):
            failures.append(f"fast rejects reference cmac at {size} B")
        if not ref.cmac_verify(key32, ct_fast, mac_fast):
            failures.append(f"reference rejects fast cmac at {size} B")

        key16 = rand(tag + b"s", 16)
        iv = rand(tag + b"i", 12)
        aad = rand(tag + b"a", size % 48)
        sealed_ref = ref.gcm(key16).seal(iv, data, aad)
        sealed_fast = fast.gcm(key16).seal(iv, data, aad)
        if sealed_ref != sealed_fast:
            failures.append(f"gcm sealed bytes differ at {size} B")
        try:
            if fast.gcm(key16).open(iv, sealed_ref, aad) != data:
                failures.append(f"fast gcm misdecrypts reference at {size} B")
            if ref.gcm(key16).open(iv, sealed_fast, aad) != data:
                failures.append(f"reference gcm misdecrypts fast at {size} B")
        except Exception as exc:  # pragma: no cover - parity failure detail
            failures.append(f"cross-engine gcm open raised at {size} B: {exc}")

        # Batch APIs: the fused fast kernels must match both the
        # reference loop and their own per-call outputs, and a tampered
        # entry must fail alone (None) without touching its batch-mates.
        batch = [
            (rand(tag + b"bi%d" % j, 12), rand(tag + b"bd%d" % j, size), aad)
            for j in range(3)
        ]
        sealed_many_ref = ref.gcm(key16).seal_many(batch)
        sealed_many_fast = fast.gcm(key16).seal_many(batch)
        if sealed_many_ref != sealed_many_fast:
            failures.append(f"gcm seal_many differs at {size} B")
        percall = [fast.gcm(key16).seal(*entry) for entry in batch]
        if sealed_many_fast != percall:
            failures.append(f"fast seal_many != per-call seal at {size} B")
        opened = [
            (biv, blob, baad)
            for (biv, _bd, baad), blob in zip(batch, sealed_many_fast)
        ]
        tampered = list(opened)
        blob = bytearray(tampered[1][1])
        blob[0] ^= 0x01
        tampered[1] = (tampered[1][0], bytes(blob), tampered[1][2])
        for engine in (ref, fast):
            plains = engine.gcm(key16).open_many(tampered)
            expected = [batch[0][1], None, batch[2][1]]
            if plains != expected:
                failures.append(
                    f"{engine.name} open_many tamper isolation broke "
                    f"at {size} B"
                )
    return failures
