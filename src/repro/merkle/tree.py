"""A binary Merkle hash tree over a fixed number of leaves.

The ShieldStore baseline hashes each bucket's MAC list into a leaf; inner
nodes hash the concatenation of their children; the root is the integrity
anchor stored in trusted memory.  Leaf updates recompute the path to the
root; verification recomputes a leaf and compares the recomputed root with
the trusted one.

SHA-256 stands in for the paper's hash; only the *count* of hash
invocations matters to the cost model, and the tree exposes counters for it.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.errors import ConfigurationError, IntegrityError

__all__ = ["MerkleTree"]

_EMPTY_LEAF = hashlib.sha256(b"shieldstore-empty-leaf").digest()


def _hash_pair(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(left + right).digest()


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + data).digest()


class MerkleTree:
    """Merkle tree with a power-of-two leaf array and incremental updates.

    The tree is stored as a flat array (1-indexed heap layout): node ``i``
    has children ``2i`` and ``2i+1``; leaves occupy ``[n, 2n)``.
    """

    def __init__(self, num_leaves: int):
        if num_leaves < 1:
            raise ConfigurationError(
                f"need at least one leaf, got {num_leaves}"
            )
        n = 1
        while n < num_leaves:
            n *= 2
        self._n = n
        self.num_leaves = num_leaves
        self._nodes: List[bytes] = [b""] * (2 * n)
        #: Number of hash invocations performed (cost-model hook).
        self.hash_count = 0
        for i in range(n, 2 * n):
            self._nodes[i] = _EMPTY_LEAF
        for i in range(n - 1, 0, -1):
            self._nodes[i] = _hash_pair(
                self._nodes[2 * i], self._nodes[2 * i + 1]
            )

    @property
    def root(self) -> bytes:
        """The current root hash (the enclave-resident trust anchor)."""
        return self._nodes[1]

    @property
    def depth(self) -> int:
        """Number of levels below the root."""
        return self._n.bit_length() - 1

    def update_leaf(self, index: int, data: bytes) -> bytes:
        """Rehash leaf ``index`` from ``data`` and refresh the root path.

        Returns the new root.  Costs ``depth + 1`` hash invocations --
        exactly what ShieldStore pays on every write.
        """
        self._check_index(index)
        node = self._n + index
        self._nodes[node] = _hash_leaf(data)
        self.hash_count += 1
        node //= 2
        while node >= 1:
            self._nodes[node] = _hash_pair(
                self._nodes[2 * node], self._nodes[2 * node + 1]
            )
            self.hash_count += 1
            node //= 2
        return self.root

    def verify_leaf(self, index: int, data: bytes) -> None:
        """Recompute the path for ``data`` at ``index``; compare to the root.

        Raises :class:`IntegrityError` if the recomputed root differs --
        i.e. the untrusted bucket contents were tampered with.  Costs
        ``depth + 1`` hashes, ShieldStore's per-read overhead.
        """
        self._check_index(index)
        node = self._n + index
        current = _hash_leaf(data)
        self.hash_count += 1
        while node > 1:
            sibling = self._nodes[node ^ 1]
            if node % 2 == 0:
                current = _hash_pair(current, sibling)
            else:
                current = _hash_pair(sibling, current)
            self.hash_count += 1
            node //= 2
        if current != self._nodes[1]:
            raise IntegrityError(
                f"Merkle verification failed for leaf {index}"
            )

    def proof(self, index: int) -> List[bytes]:
        """Sibling hashes from leaf ``index`` up to (excluding) the root."""
        self._check_index(index)
        node = self._n + index
        path = []
        while node > 1:
            path.append(self._nodes[node ^ 1])
            node //= 2
        return path

    @staticmethod
    def verify_proof(
        root: bytes, index: int, data: bytes, proof: Sequence[bytes]
    ) -> bool:
        """Stateless proof check against a trusted ``root``."""
        current = _hash_leaf(data)
        node = index
        for sibling in proof:
            if node % 2 == 0:
                current = _hash_pair(current, sibling)
            else:
                current = _hash_pair(sibling, current)
            node //= 2
        return current == root

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_leaves:
            raise ConfigurationError(
                f"leaf index {index} out of range [0, {self.num_leaves})"
            )
