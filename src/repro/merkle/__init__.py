"""Merkle tree integrity structures (used by the ShieldStore baseline).

ShieldStore (Kim et al., EuroSys '19) keeps encrypted key-value entries in
untrusted memory, chains a MAC to each entry, and maintains a Merkle tree
whose leaves are per-bucket MAC lists; only the tree root (and a bounded
cache of inner hashes) lives inside the enclave.  Every request must verify
the path from the touched bucket to the in-enclave root -- the per-request
hashing this implies is the server-side CPU cost Precursor eliminates.
"""

from repro.merkle.tree import MerkleTree

__all__ = ["MerkleTree"]
