"""The batched request pipeline: K control messages per enclave transition.

The serial polling loop (:meth:`PrecursorServer.process_client`) pays
every fixed cost once per frame: one modeled enclave crossing, one GCM
cipher warm-up, one reply doorbell.  The paper's transition-cost argument
(~13 100 cycles per crossing, §1/§2.1) says the win is amortization:
drain the ring in batches and carry K control messages across the
boundary at once.  :class:`BatchPipeline` is that engine.  One *cycle*
over one client's ring runs five phases:

1. **drain** -- poll up to K ready frames from the request ring;
2. **parse** -- decode the untrusted framing, validate the client id and
   apply reply-ring credits (per-frame rejects are recorded exactly as
   the serial path records them);
3. **batched ecall + open** -- record one batched enclave entry carrying
   the cycle's messages, then authenticate every sealed control segment
   with one fused :meth:`~repro.crypto.provider.CryptoProvider.transport_open_many`
   call.  A frame that fails authentication is dropped *alone*: its
   batch-mates proceed;
4. **dispatch** -- run each authenticated request through the unmodified
   serial dispatch (:meth:`PrecursorServer._process_control_blob`:
   replay filter, duplicate-reply cache, table update, replication
   hook), with replies *staged* instead of sealed inline;
5. **seal + coalesced reply** -- seal the staged replies in dispatch
   order (session IVs are drawn in the same order the serial path would
   draw them, so every reply is byte-identical to its serial twin) and
   write them through one gather work request per cycle.

Equivalence contract: with ``ecall_batch=1`` every phase degenerates to
exactly the serial sequence -- same frame order, same per-message seals,
same single-frame reply writes (``produce_many`` falls back to
``produce``), same credit write -- so the K=1 pipeline is byte-identical
to the pre-batching server, fault-injection judgements included.
``tests/test_batch_equivalence.py`` holds this to store digests, raw
reply-ring bytes and duplicate-reply-cache contents at every tested K.
The identity covers wire bytes and protocol behaviour, not modeled cost
telemetry: the batched path records one modeled ecall per cycle where
the serial path records none (its thread entered once via
``start_polling``), and ``server_handle_ns`` spans dispatch only -- both
asymmetries are spelled out in ``docs/BATCHING.md``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.protocol import Request
from repro.errors import CapacityError, ConfigurationError, ProtocolError

__all__ = ["BatchPipeline"]


@dataclass
class _ParsedFrame:
    """One drained frame after the untrusted parse phase."""

    request: Optional[Request]  # None -> rejected before the enclave
    control_blob: Optional[bytes] = None  # filled by the open phase


class BatchPipeline:
    """Batch-oriented polling engine bolted onto a :class:`PrecursorServer`.

    Owns no protocol state of its own: replay filters, duplicate-reply
    caches, tenant grants and replication hooks all live in the server
    and are exercised through the same code paths the serial loop uses.
    The pipeline only changes *when* the crypto and the reply writes
    happen -- grouped across the drained frame set instead of interleaved
    per frame.
    """

    def __init__(self, server, k: int):
        if k < 1:
            raise ConfigurationError(
                f"ecall_batch must be >= 1 to enable batching: {k}"
            )
        self.server = server
        self.k = k
        shard_labels = (
            {"shard": server.shard_name}
            if server.shard_name is not None
            else None
        )
        registry = server.obs.registry
        self._obs_batch_size = registry.histogram(
            "server_batch_size",
            "frames carried per batched enclave entry",
            shard_labels,
        )
        self._obs_cycles = registry.counter(
            "server_batch_cycles_total",
            "drain cycles run by the batched pipeline",
            shard_labels,
        )

    # -- public driver -----------------------------------------------------

    def process_client(self, client_id: int, batch: int = 64) -> int:
        """Batched twin of :meth:`PrecursorServer.process_client`.

        Drains the client's ring in cycles of up to ``ecall_batch``
        frames until the ring is empty or ``batch`` frames were handled,
        then pushes the credit update -- one credit write per call, same
        as the serial path.
        """
        server = self.server
        server._check_alive()
        channel = server._channel(client_id)
        if channel.revoked:
            return 0
        handled = 0
        while handled < batch:
            cycle = self._run_cycle(channel, min(self.k, batch - handled))
            if cycle == 0:
                break
            handled += cycle
        credit = channel.request_consumer.credits_due()
        if credit is not None:
            server._rdma_write(
                channel,
                channel.credit_rkey,
                0,
                struct.pack(">Q", credit),
            )
        return handled

    def process_pending(self, batch: int = 64) -> int:
        """Batched twin of :meth:`PrecursorServer.process_pending`.

        Clients are visited in admission order and each is drained
        before the next -- the same total order the serial loop
        produces.
        """
        server = self.server
        server._check_alive()
        if not server._started:
            raise ConfigurationError("server not started")
        handled = 0
        for client_id in list(server._channels):
            handled += self.process_client(client_id, batch)
        return handled

    # -- one drain cycle ---------------------------------------------------

    def _run_cycle(self, channel, budget: int) -> int:
        """Run one drain-parse-open-dispatch-seal cycle; returns frames."""
        server = self.server
        frames = channel.request_consumer.poll(budget)
        if not frames:
            return 0
        self._obs_cycles.inc()
        self._obs_batch_size.record(len(frames))

        parsed = self._parse_phase(channel, frames)

        # The batched enclave entry: one modeled world switch carries the
        # whole cycle (the serial path conceptually pays one per frame).
        # Recorded through the accounting object, not Enclave.ecall: the
        # trusted thread never actually leaves the enclave between frames
        # (it entered once via start_polling), and dispatch may re-enter
        # sealing via the replication hook, which the real ecall gate
        # would reject as nesting.
        server.enclave.transitions.record_batched_ecall(len(frames))

        self._open_phase(channel, parsed)

        staged: List[Tuple[object, object, object]] = []
        server._reply_sink = staged
        try:
            self._dispatch_phase(channel, parsed)
        finally:
            server._reply_sink = None

        self._reply_phase(channel, staged)
        return len(frames)

    def _parse_phase(self, channel, frames) -> List[_ParsedFrame]:
        """Decode untrusted framing and apply credits, in frame order."""
        server = self.server
        stats = server.stats
        rejects = server._obs_rejects
        parsed: List[_ParsedFrame] = []
        for frame in frames:
            try:
                request = Request.decode(frame)
            except ProtocolError:
                stats.protocol_errors += 1
                rejects.inc()
                parsed.append(_ParsedFrame(request=None))
                continue
            if request.client_id != channel.client_id:
                stats.protocol_errors += 1
                rejects.inc()
                parsed.append(_ParsedFrame(request=None))
                continue
            try:
                channel.reply_producer.credit_update(request.reply_credit)
            except ConfigurationError:
                stats.protocol_errors += 1
                rejects.inc()
                parsed.append(_ParsedFrame(request=None))
                continue
            parsed.append(_ParsedFrame(request=request))
        return parsed

    def _open_phase(self, channel, parsed: List[_ParsedFrame]) -> None:
        """Authenticate every surviving control segment in one fused call."""
        server = self.server
        live = [entry for entry in parsed if entry.request is not None]
        if not live:
            return
        session = server._sessions[channel.client_id]
        aad = struct.pack(">I", channel.client_id)
        with server.obs.tracer.stage("server.unseal_batch"):
            blobs = server.provider.transport_open_many(
                session.key,
                [(entry.request.sealed_control, aad) for entry in live],
            )
        for entry, blob in zip(live, blobs):
            if blob is None:
                server.stats.auth_failures += 1
                server._obs_rejects.inc()
                entry.request = None  # poisoned alone; batch-mates proceed
            else:
                entry.control_blob = blob

    def _dispatch_phase(self, channel, parsed: List[_ParsedFrame]) -> None:
        """Run the serial dispatch per frame, replies staged not sealed.

        Follows :meth:`PrecursorServer._handle_frame`'s sequence: every
        drained frame -- including ones rejected in earlier phases --
        gets its service hook call and its ``server_handle_ns`` sample,
        in frame order, so modeled-latency harnesses observe the same
        per-frame event sequence the serial loop produces.  One timing
        caveat: the batched sample spans *dispatch only* -- frame
        decode, the credit update and the GCM open already happened in
        the parse/open phases, outside this timed region (they are
        covered by the cycle's ``server.unseal_batch`` tracer stage
        instead), whereas the serial sample includes them.  At K=1 the
        behaviour is still byte-identical; the per-frame latency *split*
        is not (``docs/BATCHING.md``).
        """
        server = self.server
        clock = server.obs.tracer.clock
        for entry in parsed:
            entered_ns = clock.now_ns()
            try:
                if entry.request is not None:
                    server._process_control_blob(
                        channel, entry.control_blob, entry.request
                    )
                hook = server.service_hook
                if hook is not None:
                    hook()
            finally:
                server._obs_handle_ns.record(
                    max(0, clock.now_ns() - entered_ns)
                )

    def _reply_phase(self, cycle_channel, staged) -> None:
        """Seal staged replies in dispatch order; coalesce the writes.

        Session IVs are drawn in exactly the order the serial path's
        per-reply seals would have drawn them, so every reply ring slot
        receives byte-identical contents at any K; only the transport is
        coalesced (one gather work request per channel per cycle).

        Seal keys and reply rings are per-channel state, so both are
        keyed off each staged entry's *own* channel, never the cycle
        argument: today's dispatch paths always reply on the cycle
        channel (one group, one gather write), but an entry staged for a
        different channel must never be sealed under the wrong session
        or land in the wrong ring.
        """
        del cycle_channel  # sealing is keyed per staged entry, see above
        if not staged:
            return
        server = self.server
        from repro.core.protocol import Response

        # Group by entry channel, preserving dispatch order within each
        # group and first-appearance order across groups.
        groups: List[Tuple[object, List[Tuple[object, object]]]] = []
        slots = {}
        for entry_channel, control, payload in staged:
            slot = slots.get(id(entry_channel))
            if slot is None:
                slot = len(groups)
                slots[id(entry_channel)] = slot
                groups.append((entry_channel, []))
            groups[slot][1].append((control, payload))
        for entry_channel, entries in groups:
            session = server._sessions[entry_channel.client_id]
            aad = b"resp" + struct.pack(">I", entry_channel.client_id)
            with server.obs.tracer.stage("server.seal_batch"):
                sealed = server.provider.transport_seal_many(
                    session,
                    [(control.encode(), aad) for control, _pl in entries],
                )
            encoded = [
                Response(sealed_control=blob, payload=payload).encode()
                for (_control, payload), blob in zip(entries, sealed)
            ]
            with server.obs.tracer.stage("server.reply_write"):
                try:
                    entry_channel.reply_producer.produce_many(encoded)
                except CapacityError:
                    # produce_many is all-or-nothing and raises before
                    # writing anything, so replay the group per frame:
                    # the leading replies that fit are delivered and the
                    # failure surfaces on the same frame the serial
                    # per-reply path would have failed on.
                    for blob in encoded:
                        entry_channel.reply_producer.produce(blob)
