"""The Precursor server: enclave metadata, untrusted payloads, RDMA rings.

Architecture (paper Figure 3):

- Clients RDMA-WRITE framed requests into per-client circular buffers in
  **untrusted** server memory.
- A trusted thread -- entered once through the ``start_polling`` ecall and
  never leaving -- polls the rings.  For each request it opens the sealed
  control data with the client's session key, checks the ``oid`` replay
  counter, and updates the enclave-resident Robin Hood hash table that maps
  ``key -> (K_operation, ptr)``.
- The encrypted payload **never enters the enclave**: on a PUT the trusted
  thread stores the ciphertext+MAC into the pre-allocated untrusted pool
  (growing it with the single batched ocall when exhausted); on a GET it
  attaches the stored bytes to the reply untouched.
- Replies (sealed control + raw payload) are RDMA-WRITTEN into the
  client's reply ring; request-ring credits are pushed with periodic
  one-sided writes.

The enclave exposes exactly three ecalls -- ``init_hashtable``,
``start_polling`` and ``add_client`` -- matching the paper's implementation
(§4), and its trusted allocations are tagged so the EPC working set of
Table 1 can be measured with :mod:`repro.sgx.sgxperf`.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.crypto.provider import CryptoProvider, EncryptedPayload, SealedMessage
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.core.payload_store import PayloadPointer, PayloadStore
from repro.core.protocol import (
    ControlData,
    OpCode,
    Request,
    Response,
    ResponseControl,
    Status,
)
from repro.core.replay import ReplayGuard
from repro.core.ring_buffer import RingConsumer, RingLayout, RingProducer
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    KeyNotFoundError,
    ProtocolError,
    ReplayError,
    ShardUnavailableError,
)
from repro.htable import ReadWriteLock, RobinHoodTable
from repro.obs import ObsContext
from repro.rdma.fabric import Fabric
from repro.rdma.memory import AccessFlags, MemoryRegion
from repro.rdma.qp import QueuePair
from repro.rdma.verbs import Opcode as RdmaOpcode
from repro.rdma.verbs import WorkRequest
from repro.sgx.enclave import Enclave
from repro.sgx.sealing import seal_data, unseal_data

__all__ = ["PrecursorServer", "ServerConfig", "ServerStats"]

#: Marks server->client traffic in the GCM IV space so the two directions
#: of one session never reuse an IV (the IV is client_id || counter).
_SERVER_IV_BIT = 0x8000_0000

#: AAD binding migration records to their purpose: a sealed checkpoint or
#: any other enclave-sealed blob can never be replayed into import_entry.
_MIGRATION_AAD = b"precursor-migrate-v1"


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of a Precursor server instance.

    The trusted-memory sizes are *nominal accounting* values chosen to
    match the paper's measured binary: ~180 KiB of enclave code and stack
    yield Table 1's 52-page initial working set, and 92 nominal bytes per
    hash-table slot reproduce its growth curve.
    """

    #: Nominal enclave code+data segment (45 pages).
    code_size_bytes: int = 180 * 1024
    #: Nominal enclave stack (4 pages).
    stack_size_bytes: int = 16 * 1024
    #: Other static trusted structures: reply queues, config (3 pages).
    misc_trusted_bytes: int = 12 * 1024
    #: Nominal trusted bytes per hash-table slot (key item, 256-bit
    #: K_operation, pointer, oid, client id -- paper §4).
    table_slot_bytes: int = 92
    #: Slots in the initially materialised table subset.
    initial_table_capacity: int = 512
    #: Per-client session state allocated on the first add_client (1 page).
    client_state_bytes: int = 4096
    #: Request/reply ring geometry.
    ring_slots: int = 64
    ring_slot_size: int = 20 * 1024
    #: Untrusted payload pool arena size.
    arena_size: int = 4 * 1024 * 1024
    #: Store payload MACs inside the enclave and return them over the
    #: sealed channel (the hardening discussed in §3.9 against excluded
    #: clients rewriting values they once knew).
    strict_integrity: bool = False
    #: Keep values smaller than the control data inside the enclave table
    #: (the future-work optimisation sketched in §5.2).
    inline_small_values: bool = False
    #: Threshold for the inline optimisation (~control data size).
    inline_threshold: int = 56
    #: Enforce per-tenant ownership in the enclave: only the writing
    #: client (or clients it shared the key with) may read or delete an
    #: entry.  The "traditional access control schemes on top" the paper's
    #: per-pair key design enables (§3.3).
    tenant_isolation: bool = False
    #: Control messages per batched enclave transition.  0 (the default)
    #: keeps the original serial request path.  K >= 1 routes polling
    #: through the batched pipeline (:mod:`repro.core.batch`): drain up
    #: to K frames per cycle, one modeled enclave entry per cycle,
    #: phase-grouped GCM open/seal across the cycle and one gather reply
    #: write per cycle.  K=1 is byte-identical to the serial path.
    ecall_batch: int = 0


@dataclass
class ServerStats:
    """Operation counters exposed for tests and experiments."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    auth_failures: int = 0
    replay_rejections: int = 0
    duplicate_replies: int = 0
    protocol_errors: int = 0
    inline_stores: int = 0
    entries_exported: int = 0
    entries_imported: int = 0


@dataclass
class _Entry:
    """Enclave hash-table value: the security metadata for one key."""

    k_operation: bytes
    ptr: Optional[PayloadPointer]
    client_id: int
    mac: Optional[bytes] = None  # strict-integrity mode only
    inline_payload: Optional[bytes] = None  # inline-small-values mode only


@dataclass
class _ClientChannel:
    """Untrusted per-client connection state on the server."""

    client_id: int
    request_region: MemoryRegion
    request_consumer: RingConsumer
    qp: QueuePair
    reply_rkey: int
    credit_rkey: int
    reply_producer: RingProducer = field(default=None)
    revoked: bool = False
    #: At-most-once duplicate filter (retry support): the oid, request
    #: digest and reply of the most recently *applied* request.  A
    #: retransmission -- same oid, same digest -- gets the cached ack
    #: re-sent instead of a REPLAY rejection, so a client whose reply was
    #: lost can retry without double-applying.
    last_oid: Optional[int] = None
    last_digest: Optional[bytes] = None
    last_reply_control: Optional[ResponseControl] = None
    last_reply_payload: Optional[EncryptedPayload] = None


class PrecursorServer:
    """A Precursor key-value store instance.

    Wire a server to a :class:`~repro.rdma.fabric.Fabric`, then create
    :class:`~repro.core.client.PrecursorClient` objects against it.  Call
    :meth:`process_pending` to run the (conceptually perpetual) trusted
    polling loop; clients constructed with ``auto_pump=True`` do this for
    you after every operation.
    """

    HOST_NAME = "precursor-server"

    def __init__(
        self,
        fabric: Fabric = None,
        config: ServerConfig = None,
        keygen: KeyGenerator = None,
        obs: ObsContext = None,
        shard_name: str = None,
        shard_index: int = 0,
    ):
        self.fabric = fabric if fabric is not None else Fabric()
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats()
        self.pd = self.fabric.add_host(self.HOST_NAME)
        self.provider = CryptoProvider(keygen)

        #: Shard membership: ``shard_name`` labels this server's metric
        #: series (one registry serves a whole cluster); ``shard_index``
        #: keeps the sealed-migration IV space disjoint across shards,
        #: which all share one sealing key (identical measurement).
        self.shard_name = shard_name
        self.shard_index = shard_index
        self._migration_seq = 0

        #: Shared observability context (tracer + metrics registry).  The
        #: fabric, the enclave and every attached client record into it.
        self.obs = obs if obs is not None else ObsContext.create()
        self.fabric.bind_obs(self.obs.registry)

        cfg = self.config
        self.enclave = Enclave(
            name="precursor",
            code_size_bytes=cfg.code_size_bytes,
            stack_size_bytes=cfg.stack_size_bytes,
        )
        shard_labels = {"shard": shard_name} if shard_name is not None else {}
        self.enclave.bind_obs(self.obs.registry, shard_labels or None)
        registry = self.obs.registry
        self._obs_requests = {
            OpCode.PUT: registry.counter(
                "server_requests_total",
                "requests handled",
                {"op": "put", **shard_labels},
            ),
            OpCode.GET: registry.counter(
                "server_requests_total",
                "requests handled",
                {"op": "get", **shard_labels},
            ),
            OpCode.DELETE: registry.counter(
                "server_requests_total",
                "requests handled",
                {"op": "delete", **shard_labels},
            ),
        }
        self._obs_rejects = registry.counter(
            "server_rejected_requests_total",
            "frames dropped for auth/replay/protocol reasons",
            shard_labels or None,
        )
        self._obs_handle_ns = registry.histogram(
            "server_handle_ns",
            "per-frame trusted handling time",
            shard_labels or None,
        )
        self.enclave.allocator.allocate(cfg.misc_trusted_bytes, "misc")
        self.enclave.register_ecall("init_hashtable", self._ecall_init_hashtable)
        self.enclave.register_ecall("start_polling", self._ecall_start_polling)
        self.enclave.register_ecall("add_client", self._ecall_add_client)
        self.enclave.register_ocall("grow_payload_pool", self._ocall_grow_pool)

        # Trusted state (conceptually inside the enclave).
        self._table: Optional[RobinHoodTable] = None
        self._table_lock = ReadWriteLock()
        self._sessions: Dict[int, SessionKey] = {}
        self._replay = ReplayGuard()
        self._client_state_allocated = False
        self._table_capacity_charged = 0
        # Tenant-isolation grants: key -> set of additionally allowed
        # client ids (the owner is always allowed).
        self._grants: Dict[bytes, set] = {}

        # Untrusted state.
        self.payload_store = PayloadStore(
            arena_size=cfg.arena_size,
            grow_ocall=self._grow_via_ocall,
        )
        self._channels: Dict[int, _ClientChannel] = {}
        self._started = False
        self._polling = False
        #: Set by :meth:`crash`; every entry point then raises
        #: :class:`ShardUnavailableError` until :meth:`restart`.
        self.crashed = False
        #: Replication seam (:mod:`repro.replica`): when this server is a
        #: group primary, the group installs a callable here and every
        #: applied mutation reports ``(op, key)`` -- *after* the table
        #: commit, *before* the client's ack is produced, which is what
        #: makes sync/semi-sync acknowledged-write contracts real.
        self.replication_hook: Optional[Callable[[str, bytes], None]] = None
        #: Service-time seam: when set, called once per handled frame,
        #: inside the timed region of :meth:`_handle_frame`.  The health
        #: harness installs a closure here that advances a manual clock
        #: by a modelled per-shard service latency, which is what makes
        #: deterministic hot-shard p99 experiments possible.
        self.service_hook: Optional[Callable[[], None]] = None
        #: Reply staging seam for the batched pipeline (exposed as the
        #: thread-local :attr:`_reply_sink` property): when a cycle
        #: installs a staging list, :meth:`_send_response` appends
        #: ``(channel, control, payload)`` instead of sealing and
        #: writing inline; the pipeline seals the whole cycle in
        #: dispatch order afterwards.  The duplicate-reply cache still
        #: updates at staging time, so cache-before-write semantics are
        #: untouched.
        self._reply_staging = threading.local()
        #: The batched polling engine; ``None`` keeps the serial path.
        if cfg.ecall_batch:
            from repro.core.batch import BatchPipeline

            self._batcher = BatchPipeline(self, cfg.ecall_batch)
        else:
            self._batcher = None

    # -- ecall implementations (trusted side) ------------------------------

    def _ecall_init_hashtable(self) -> None:
        # The table itself is materialised lazily on the first insert
        # ("only initializes a subset of the hash table in the enclave,
        # which increases within a threshold", §5.4).
        self._table = None

    def _ecall_start_polling(self) -> None:
        self._polling = True

    def _ecall_add_client(
        self, client_id: int, session_key: bytes, reconnect: bool = False
    ) -> None:
        if not self._client_state_allocated:
            self.enclave.allocator.allocate(
                self.config.client_state_bytes, "client_state"
            )
            self._client_state_allocated = True
        if client_id in self._sessions and not reconnect:
            raise ConfigurationError(f"client {client_id} already registered")
        self._sessions[client_id] = SessionKey(
            key=session_key, client_id=client_id | _SERVER_IV_BIT
        )
        if not self._replay.is_registered(client_id):
            # Fresh admission -- or a reconnect after crash-restart where
            # the restored checkpoint did not know this client yet.
            self._replay.register_client(client_id)
        # On a plain reconnect (QP flap) the replay expectation is *kept*:
        # the client resumes its oid sequence, so a request lost before the
        # flap can be retried under its original oid.

    def _ocall_grow_pool(self, nbytes: int) -> None:
        # The single batched ocall of §4; PayloadStore performs the actual
        # allocation after this accounting hook returns.
        del nbytes

    def _grow_via_ocall(self, nbytes: int) -> None:
        if self.enclave.inside:
            self.enclave.ocall("grow_payload_pool", nbytes)
        else:
            # Pool growth triggered from the perpetual polling context:
            # still one ocall at the boundary.
            self.enclave.transitions.record_ocall()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Issue the startup ecalls (idempotent)."""
        if self._started:
            return
        self.enclave.ecall("init_hashtable")
        self.enclave.ecall("start_polling")
        self._started = True

    def _check_alive(self) -> None:
        if self.crashed:
            name = self.shard_name or self.HOST_NAME
            raise ShardUnavailableError(f"server {name!r} has crashed")

    def crash(self) -> None:
        """Kill this server: enclave torn down, every connection severed.

        Models a machine/enclave failure.  All trusted state (hash table,
        sessions, replay counters) is conceptually lost -- only what was
        sealed to disk beforehand (:mod:`repro.core.persistence`) survives.
        Every QP errors out, so in-flight client posts fail fast rather
        than timing out.  Service resumes only after :meth:`restart`.
        """
        self.crashed = True
        self.enclave.destroy()
        for channel in self._channels.values():
            channel.qp.error_out()

    def restart(self) -> None:
        """Boot a fresh enclave after :meth:`crash`.

        The replacement enclave runs the same binary (identical
        measurement), so it can unseal checkpoints its predecessor wrote
        -- restore one with :class:`~repro.core.persistence.CheckpointManager`.
        All volatile trusted state starts empty; clients must re-attest
        through :meth:`reconnect_client`.
        """
        if not self.crashed:
            raise ConfigurationError("restart() is only valid after crash()")
        cfg = self.config
        enclave = Enclave(
            name="precursor",
            code_size_bytes=cfg.code_size_bytes,
            stack_size_bytes=cfg.stack_size_bytes,
        )
        shard_labels = (
            {"shard": self.shard_name} if self.shard_name is not None else {}
        )
        enclave.bind_obs(self.obs.registry, shard_labels or None)
        enclave.allocator.allocate(cfg.misc_trusted_bytes, "misc")
        enclave.register_ecall("init_hashtable", self._ecall_init_hashtable)
        enclave.register_ecall("start_polling", self._ecall_start_polling)
        enclave.register_ecall("add_client", self._ecall_add_client)
        enclave.register_ocall("grow_payload_pool", self._ocall_grow_pool)
        self.enclave = enclave
        self._table = None
        self._sessions = {}
        self._replay = ReplayGuard()
        self._client_state_allocated = False
        self._table_capacity_charged = 0
        self._grants = {}
        self.payload_store = PayloadStore(
            arena_size=cfg.arena_size,
            grow_ocall=self._grow_via_ocall,
        )
        self._channels = {}
        self._started = False
        self._polling = False
        self.crashed = False

    # -- client admission ------------------------------------------------------

    def add_client(
        self,
        client_id: int,
        session_key: bytes,
        qp: QueuePair,
        reply_rkey: int,
        credit_rkey: int,
    ) -> Tuple[int, RingLayout]:
        """Admit an attested client.

        Returns ``(request_rkey, ring_layout)`` -- the registered buffer
        window the server shares to bootstrap RDMA (paper §3.6).
        """
        self._check_alive()
        self.start()
        self.enclave.ecall("add_client", client_id, session_key)
        cfg = self.config
        layout = RingLayout(cfg.ring_slots, cfg.ring_slot_size)
        request_region = self.pd.register(
            layout.total_bytes, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )
        channel = _ClientChannel(
            client_id=client_id,
            request_region=request_region,
            request_consumer=RingConsumer(layout, request_region),
            qp=qp,
            reply_rkey=reply_rkey,
            credit_rkey=credit_rkey,
        )
        channel.reply_producer = RingProducer(
            layout,
            write_remote=lambda offset, data, ch=channel: self._rdma_write(
                ch, ch.reply_rkey, offset, data
            ),
            write_remote_many=lambda writes, ch=channel: self._rdma_write_gather(
                ch, ch.reply_rkey, writes
            ),
        )
        self._channels[client_id] = channel
        return request_region.rkey, layout

    def reconnect_client(
        self,
        client_id: int,
        session_key: bytes,
        qp: QueuePair,
        reply_rkey: int,
        credit_rkey: int,
    ) -> Tuple[int, RingLayout]:
        """Re-admit a client after a QP error or a server restart.

        The client has re-attested (``session_key`` is the *new* session
        key) and brings a fresh QP and reply/credit regions.  Crucially the
        enclave keeps the client's replay expectation when it still has one
        -- the client resumes its ``oid`` sequence, so a request that was
        in flight when the connection died can be retried under its
        original oid and deduplicated.  After a crash-restart the replay
        state instead comes from the restored checkpoint (or starts fresh
        for clients the checkpoint never saw).
        """
        self._check_alive()
        self.start()
        self.enclave.ecall("add_client", client_id, session_key, reconnect=True)
        cfg = self.config
        layout = RingLayout(cfg.ring_slots, cfg.ring_slot_size)
        request_region = self.pd.register(
            layout.total_bytes, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )
        channel = _ClientChannel(
            client_id=client_id,
            request_region=request_region,
            request_consumer=RingConsumer(layout, request_region),
            qp=qp,
            reply_rkey=reply_rkey,
            credit_rkey=credit_rkey,
        )
        channel.reply_producer = RingProducer(
            layout,
            write_remote=lambda offset, data, ch=channel: self._rdma_write(
                ch, ch.reply_rkey, offset, data
            ),
            write_remote_many=lambda writes, ch=channel: self._rdma_write_gather(
                ch, ch.reply_rkey, writes
            ),
        )
        old = self._channels.get(client_id)
        if old is not None:
            # The duplicate-reply cache must survive reconnection: the
            # very reason the client reconnects may be a reply it never
            # saw for a request the enclave already applied.
            channel.last_oid = old.last_oid
            channel.last_digest = old.last_digest
            channel.last_reply_control = old.last_reply_control
            channel.last_reply_payload = old.last_reply_payload
        self._channels[client_id] = channel
        return request_region.rkey, layout

    def replay_expected(self, client_id: int) -> int:
        """The oid the enclave expects next from ``client_id``.

        Conceptually part of the attested reconnect handshake: a client
        coming back from a transport fault (or a server crash-restart)
        learns where the enclave's replay filter stands so the two sides
        resume the sequence in lockstep (``docs/FAULTS.md``).
        """
        self._check_alive()
        return self._replay.expected_oid(client_id)

    def revoke_client(self, client_id: int) -> None:
        """Revoke a (rogue) client by erroring out its QP (§3.9)."""
        channel = self._channel(client_id)
        channel.revoked = True
        channel.qp.error_out()

    def _channel(self, client_id: int) -> _ClientChannel:
        channel = self._channels.get(client_id)
        if channel is None:
            raise ConfigurationError(f"unknown client {client_id}")
        return channel

    def _rdma_write(
        self, channel: _ClientChannel, rkey: int, offset: int, data: bytes
    ) -> None:
        self.fabric.post_send(
            channel.qp,
            WorkRequest(
                wr_id=channel.client_id,
                opcode=RdmaOpcode.RDMA_WRITE,
                data=data,
                remote_rkey=rkey,
                remote_offset=offset,
                signaled=False,
                inline=len(data) <= channel.qp.max_inline,
            ),
        )

    def _rdma_write_gather(
        self,
        channel: _ClientChannel,
        rkey: int,
        writes: Iterable[Tuple[int, bytes]],
    ) -> None:
        """Post one gather WRITE landing several ``(offset, data)`` slices.

        The coalesced-reply transport of the batched pipeline: one WQE,
        one doorbell, K reply slots.  A single-entry list degenerates to
        the plain write so the wire behaviour (and the fault-injection
        judgement sequence) of a batch of one matches the serial path.
        """
        writes = list(writes)
        if len(writes) == 1:
            offset, data = writes[0]
            self._rdma_write(channel, rkey, offset, data)
            return
        data = b"".join(payload for _offset, payload in writes)
        self.fabric.post_send(
            channel.qp,
            WorkRequest(
                wr_id=channel.client_id,
                opcode=RdmaOpcode.RDMA_WRITE,
                data=data,
                remote_rkey=rkey,
                remote_offset=writes[0][0],
                signaled=False,
                inline=len(data) <= channel.qp.max_inline,
                segments=tuple(
                    (offset, len(payload)) for offset, payload in writes
                ),
            ),
        )

    # -- the polling loop ------------------------------------------------------

    def process_client(self, client_id: int, batch: int = 64) -> int:
        """Poll one client's ring: the unit of work of a trusted thread.

        The paper assigns each trusted thread a *subset* of the client
        rings (§3.8); :class:`~repro.core.threading.ServerThreadPool`
        partitions clients over threads by calling this.

        With ``config.ecall_batch >= 1`` the batched pipeline
        (:mod:`repro.core.batch`) services the ring instead, draining it
        in cycles of K frames per modeled enclave transition.
        """
        if self._batcher is not None:
            return self._batcher.process_client(client_id, batch)
        self._check_alive()
        channel = self._channel(client_id)
        if channel.revoked:
            return 0
        handled = 0
        for frame in channel.request_consumer.poll(batch):
            self._handle_frame(channel, frame)
            handled += 1
        credit = channel.request_consumer.credits_due()
        if credit is not None:
            self._rdma_write(
                channel,
                channel.credit_rkey,
                0,
                struct.pack(">Q", credit),
            )
        return handled

    def process_pending(self, batch: int = 64) -> int:
        """One iteration of the trusted polling loop over every client ring.

        Returns the number of requests handled.  In the real system this
        loop runs forever inside the enclave; in-process callers pump it.
        """
        if self._batcher is not None:
            return self._batcher.process_pending(batch)
        self._check_alive()
        if not self._started:
            raise ConfigurationError("server not started")
        handled = 0
        for client_id in list(self._channels):
            handled += self.process_client(client_id, batch)
        return handled

    # -- request handling (trusted side) ------------------------------------

    def _handle_frame(self, channel: _ClientChannel, frame: bytes) -> None:
        clock = self.obs.tracer.clock
        entered_ns = clock.now_ns()
        try:
            self._handle_frame_inner(channel, frame)
            hook = self.service_hook
            if hook is not None:
                hook()
        finally:
            self._obs_handle_ns.record(max(0, clock.now_ns() - entered_ns))

    def _handle_frame_inner(self, channel: _ClientChannel, frame: bytes) -> None:
        try:
            request = Request.decode(frame)
        except ProtocolError:
            self.stats.protocol_errors += 1
            self._obs_rejects.inc()
            return
        if request.client_id != channel.client_id:
            # A client cannot speak for another: its frames arrive only in
            # its own ring, so a mismatched id is a protocol violation.
            self.stats.protocol_errors += 1
            self._obs_rejects.inc()
            return
        try:
            channel.reply_producer.credit_update(request.reply_credit)
        except ConfigurationError:
            # The credit rides outside the sealed segment, so a corrupted
            # frame can carry an impossible value.  Treat it like any
            # other malformed field: drop the frame, never crash the
            # polling loop (the sender's retry re-ships a clean credit).
            self.stats.protocol_errors += 1
            self._obs_rejects.inc()
            return

        session = self._sessions[channel.client_id]
        aad = struct.pack(">I", channel.client_id)
        try:
            with self.obs.tracer.stage("server.unseal_control"):
                control_blob = self.provider.transport_open(
                    session.key, request.sealed_control, aad=aad
                )
        except AuthenticationError:
            self.stats.auth_failures += 1
            self._obs_rejects.inc()
            return  # unauthenticated -> drop silently
        self._process_control_blob(channel, control_blob, request)

    def _process_control_blob(
        self, channel: _ClientChannel, control_blob: bytes, request: Request
    ) -> None:
        """Dispatch an authenticated control segment (scheme-specific).

        The server-encryption variant overrides this: there the sealed blob
        carries the whole payload, not just control data.
        """
        try:
            control = ControlData.decode(control_blob)
        except ProtocolError:
            self.stats.protocol_errors += 1
            self._obs_rejects.inc()
            return

        digest = self._request_digest(control_blob, request.payload)
        try:
            self._replay.check_and_advance(channel.client_id, control.oid)
        except ReplayError:
            self.stats.replay_rejections += 1
            self._obs_rejects.inc()
            if (
                control.oid == channel.last_oid
                and digest == channel.last_digest
                and channel.last_reply_control is not None
            ):
                # Byte-identical retransmission of the last applied
                # request: the client never saw our reply.  Re-send the
                # cached ack (at-most-once semantics) -- the operation is
                # NOT applied again.
                self.stats.duplicate_replies += 1
                self.obs.hop(
                    "dup_reply",
                    shard=self.shard_name or self.HOST_NAME,
                    oid=control.oid,
                )
                self._send_response(
                    channel,
                    channel.last_reply_control,
                    channel.last_reply_payload,
                )
            else:
                self._send_response(
                    channel,
                    ResponseControl(status=Status.REPLAY, oid=control.oid),
                )
            return
        channel.last_digest = digest
        self.obs.hop(
            "server",
            shard=self.shard_name or self.HOST_NAME,
            op=control.opcode.name.lower(),
            oid=control.oid,
        )

        counter = self._obs_requests.get(control.opcode)
        if counter is not None:
            counter.inc()
        if control.opcode is OpCode.PUT:
            self._handle_put(channel, control, request.payload)
        elif control.opcode is OpCode.GET:
            self._handle_get(channel, control)
        elif control.opcode is OpCode.DELETE:
            self._handle_delete(channel, control)

    def _handle_put(
        self,
        channel: _ClientChannel,
        control: ControlData,
        payload: Optional[EncryptedPayload],
    ) -> None:
        self.stats.puts += 1
        if payload is None or control.k_operation is None:
            self.stats.protocol_errors += 1
            self._send_response(
                channel, ResponseControl(status=Status.ERROR, oid=control.oid)
            )
            return
        cfg = self.config
        inline = (
            cfg.inline_small_values
            and payload.size() <= cfg.inline_threshold
        )
        with self.obs.tracer.stage("server.payload_store"):
            if inline:
                ptr = None
                inline_payload = payload.ciphertext + payload.mac
                self.enclave.allocator.allocate(
                    len(inline_payload), "inline_values"
                )
                self.stats.inline_stores += 1
            else:
                # Payload bytes go to the untrusted pool -- never the enclave.
                ptr = self.payload_store.store(payload.ciphertext + payload.mac)
                inline_payload = None
        entry = _Entry(
            k_operation=control.k_operation,
            ptr=ptr,
            client_id=channel.client_id,
            mac=payload.mac if cfg.strict_integrity else None,
            inline_payload=inline_payload,
        )
        with self.obs.tracer.stage("server.table_update"), \
                self._table_lock.write():
            table = self._ensure_table()
            try:
                old = table.get(control.key)
            except KeyError:
                old = None
            if (
                old is not None
                and self.config.tenant_isolation
                and old.client_id != channel.client_id
            ):
                # Cross-tenant overwrite: only the owner may update.
                denied = True
            else:
                denied = False
                table.put(control.key, entry)
                self._charge_table_growth()
        if denied:
            if inline:
                self.enclave.allocator.free(len(inline_payload), "inline_values")
            else:
                self.payload_store.release(ptr)
            self._send_response(
                channel, ResponseControl(status=Status.ERROR, oid=control.oid)
            )
            return
        if old is not None:
            if old.ptr is not None:
                self.payload_store.release(old.ptr)
            if old.inline_payload is not None:
                self.enclave.allocator.free(
                    len(old.inline_payload), "inline_values"
                )
        self._notify_replication("put", control.key)
        self._send_response(
            channel, ResponseControl(status=Status.OK, oid=control.oid)
        )

    def _notify_replication(self, op: str, key: bytes) -> None:
        # Outside every table lock: a group hook re-enters this server
        # through export_entry, which takes the read lock.
        hook = self.replication_hook
        if hook is not None:
            hook(op, bytes(key))

    # -- tenant isolation (§3.3: access control on top of per-pair keys) ----

    def grant_access(self, key: bytes, client_id: int) -> None:
        """Allow ``client_id`` to read ``key`` (tenant-isolation mode).

        An administrative/trusted-path operation: the enclave records the
        grant; on a later GET it releases the one-time key to the grantee.
        """
        if not self.config.tenant_isolation:
            raise ConfigurationError("tenant_isolation is not enabled")
        self._grants.setdefault(bytes(key), set()).add(client_id)

    def _access_allowed(self, entry: _Entry, key: bytes, client_id: int) -> bool:
        if not self.config.tenant_isolation:
            return True
        if entry.client_id == client_id:
            return True
        return client_id in self._grants.get(bytes(key), ())

    def _handle_get(self, channel: _ClientChannel, control: ControlData) -> None:
        self.stats.gets += 1
        with self.obs.tracer.stage("server.table_lookup"), \
                self._table_lock.read():
            table = self._table
            entry: Optional[_Entry]
            if table is None:
                entry = None
            else:
                try:
                    entry = table.get(control.key)
                except KeyError:
                    entry = None
            if entry is not None and not self._access_allowed(
                entry, control.key, channel.client_id
            ):
                # Deny without leaking existence: same answer as a miss.
                entry = None
            # Load while holding the read lock: compaction (which rewrites
            # pointers under the write lock) cannot run concurrently.
            blob = None
            if entry is not None:
                if entry.inline_payload is not None:
                    blob = entry.inline_payload
                else:
                    blob = self.payload_store.load(entry.ptr)
        if entry is None:
            self.stats.misses += 1
            self._send_response(
                channel,
                ResponseControl(status=Status.NOT_FOUND, oid=control.oid),
            )
            return
        self.stats.hits += 1
        payload = EncryptedPayload(ciphertext=blob[:-16], mac=blob[-16:])
        self._send_response(
            channel,
            ResponseControl(
                status=Status.OK,
                oid=control.oid,
                k_operation=entry.k_operation,
                mac=entry.mac if self.config.strict_integrity else None,
            ),
            payload=payload,
        )

    def _handle_delete(self, channel: _ClientChannel, control: ControlData) -> None:
        self.stats.deletes += 1
        with self.obs.tracer.stage("server.table_update"), \
                self._table_lock.write():
            table = self._table
            entry = None
            if table is not None:
                try:
                    existing = table.get(control.key)
                except KeyError:
                    existing = None
                if existing is not None and (
                    not self.config.tenant_isolation
                    or existing.client_id == channel.client_id
                ):
                    # Only the owner may delete; denials read as misses.
                    entry = table.delete(control.key)
                    self._grants.pop(bytes(control.key), None)
        if entry is None:
            self.stats.misses += 1
            status = Status.NOT_FOUND
        else:
            if entry.ptr is not None:
                self.payload_store.release(entry.ptr)
            if entry.inline_payload is not None:
                self.enclave.allocator.free(
                    len(entry.inline_payload), "inline_values"
                )
            status = Status.OK
            self._notify_replication("delete", control.key)
        self._send_response(
            channel, ResponseControl(status=status, oid=control.oid)
        )

    @staticmethod
    def _request_digest(
        control_blob: bytes, payload: Optional[EncryptedPayload]
    ) -> bytes:
        """Fingerprint of one request for the duplicate filter.

        Covers the authenticated control bytes *and* the untrusted payload:
        a new request that happens to reuse an old oid (a protocol bug or
        an attack) hashes differently and is rejected as a replay instead
        of being acked with a stale cached reply.
        """
        h = hashlib.sha256(control_blob)
        if payload is not None:
            h.update(payload.ciphertext)
            h.update(payload.mac)
        return h.digest()

    @property
    def _reply_sink(self) -> Optional[list]:
        """The *calling thread's* reply staging list (or ``None``).

        Thread-local on purpose: :class:`~repro.core.threading.ServerThreadPool`
        runs :meth:`process_client` from several trusted threads at
        once, and with batching enabled each worker stages the replies
        of its own drain cycle.  A process-wide attribute would let one
        thread's cycle capture (and, via its ``finally`` clause, then
        discard) replies another thread's dispatch was staging, sealing
        them under the wrong session and writing them into the wrong
        reply ring.  Per-thread sinks keep every cycle's staging
        private; per-channel state stays single-owner because the pool
        partitions clients over threads.
        """
        return getattr(self._reply_staging, "sink", None)

    @_reply_sink.setter
    def _reply_sink(self, sink: Optional[list]) -> None:
        self._reply_staging.sink = sink

    def _send_response(
        self,
        channel: _ClientChannel,
        control: ResponseControl,
        payload: Optional[EncryptedPayload] = None,
    ) -> None:
        sink = self._reply_sink
        if sink is not None:
            # Batched pipeline: stage the reply for the cycle's seal
            # phase.  The duplicate-reply cache updates here -- the same
            # logical point the serial path updates it (before any reply
            # bytes can be lost in transit), and early enough that a
            # retransmission arriving later in the *same* cycle sees it.
            if control.status is not Status.REPLAY:
                channel.last_oid = control.oid
                channel.last_reply_control = control
                channel.last_reply_payload = payload
            sink.append((channel, control, payload))
            return
        session = self._sessions[channel.client_id]
        aad = b"resp" + struct.pack(">I", channel.client_id)
        with self.obs.tracer.stage("server.seal_reply"):
            sealed = self.provider.transport_seal(
                session, control.encode(), aad=aad
            )
            response = Response(sealed_control=sealed, payload=payload)
        if control.status is not Status.REPLAY:
            # Cache the reply for the duplicate filter BEFORE attempting
            # the reply write: if the write itself is lost to a transport
            # fault, the retried request can still recover the genuine
            # ack from the cache.  (REPLAY rejections are themselves never
            # cached: a replayed frame must not overwrite the genuine
            # reply it duplicates.)
            channel.last_oid = control.oid
            channel.last_reply_control = control
            channel.last_reply_payload = payload
        with self.obs.tracer.stage("server.reply_write"):
            channel.reply_producer.produce(response.encode())

    # -- trusted memory accounting -----------------------------------------

    def _ensure_table(self) -> RobinHoodTable:
        if self._table is None:
            self._table = RobinHoodTable(
                initial_capacity=self.config.initial_table_capacity
            )
            self._charge_table_growth()
        return self._table

    def _charge_table_growth(self) -> None:
        capacity = self._table.capacity
        if capacity == self._table_capacity_charged:
            return
        slot_bytes = self.config.table_slot_bytes
        if self._table_capacity_charged:
            self.enclave.allocator.free(
                self._table_capacity_charged * slot_bytes, "hashtable"
            )
        self.enclave.allocator.allocate(capacity * slot_bytes, "hashtable")
        self._table_capacity_charged = capacity

    # -- untrusted pool maintenance ---------------------------------------------

    def compact_payloads(self) -> int:
        """Compact the untrusted pool: drop dead bytes, rewrite pointers.

        Updates and deletes leave garbage behind (the pool is a bump
        allocator, paper §3.8); long-running servers reclaim it here.
        Runs under the table write lock; live payloads are copied into a
        fresh pool and every enclave entry's pointer is rewritten.
        Returns the number of bytes reclaimed.
        """
        with self._table_lock.write():
            old_store = self.payload_store
            reclaimable = old_store.dead_bytes
            if reclaimable == 0:
                return 0
            new_store = PayloadStore(
                arena_size=self.config.arena_size,
                grow_ocall=self._grow_via_ocall,
            )
            if self._table is not None:
                # Works for both entry kinds (client-centric and the SE
                # variant): anything with a pool pointer gets migrated.
                for _key, entry in self._table.items():
                    if getattr(entry, "ptr", None) is None:
                        continue
                    blob = old_store.load(entry.ptr)
                    entry.ptr = new_store.store(blob)
            self.payload_store = new_store
            return reclaimable

    # -- bulk loading (warm-up helper) ----------------------------------------

    def warm_load(
        self, items: Iterable[Tuple[bytes, bytes]], client_id: int,
        keygen: KeyGenerator = None,
    ) -> int:
        """Bulk-insert key/value pairs through the real storage path.

        Performs genuine payload encryption, pool storage and table/EPC
        accounting but skips the per-request transport framing -- the tool
        the experiments use to pre-load 600 k (or 3 M) entries without
        paying pure-Python AES on every control message.
        """
        self._check_alive()
        keygen = keygen if keygen is not None else KeyGenerator(seed=7)
        if client_id not in self._sessions:
            raise ConfigurationError(f"unknown client {client_id}")
        count = 0
        for key, value in items:
            k_op = keygen.operation_key()
            payload = self.provider.payload_encrypt(k_op, value)
            ptr = self.payload_store.store(payload.ciphertext + payload.mac)
            entry = _Entry(
                k_operation=k_op,
                ptr=ptr,
                client_id=client_id,
                mac=payload.mac if self.config.strict_integrity else None,
            )
            with self._table_lock.write():
                table = self._ensure_table()
                table.put(key, entry)
                self._charge_table_growth()
            count += 1
        return count

    # -- live migration (repro.shard.migrate) --------------------------------
    #
    # Shards rebalance by streaming entries between enclaves.  The security
    # metadata (one-time key, strict-mode MAC, owner, grants) travels as a
    # record sealed to the enclave *binary* identity: every shard runs the
    # same measurement, so only a genuine Precursor enclave can unseal it
    # -- plaintext key material never exists outside the two enclaves.  The
    # payload travels as the ciphertext+MAC blob it already is in untrusted
    # memory; tampering with it in transit is caught by the client's MAC
    # check on the next get(), exactly as for at-rest tampering.

    def stored_keys(self) -> List[bytes]:
        """Snapshot of every key this shard currently owns."""
        with self._table_lock.read():
            if self._table is None:
                return []
            return [key for key, _entry in self._table.items()]

    def _next_migration_iv(self) -> int:
        # All shards share one sealing key (same measurement), so the IV
        # counter space is partitioned by shard index to prevent reuse.
        self._migration_seq += 1
        return (self.shard_index << 40) | self._migration_seq

    def export_entry(self, key: bytes) -> Tuple[bytes, bytes]:
        """Export ``key`` for migration: ``(sealed_record, payload_blob)``.

        The sealed record carries the enclave-resident metadata; the blob
        is the untrusted ciphertext+MAC exactly as stored.  The entry
        stays live on this shard until :meth:`evict_entry` -- the engine
        copies first, flips ownership, then evicts, so a crash mid-move
        never loses the key.
        """
        self._check_alive()
        with self._table_lock.read():
            table = self._table
            try:
                entry = table.get(key) if table is not None else None
            except KeyError:
                entry = None
            if entry is None:
                raise KeyNotFoundError(key)
            if entry.inline_payload is not None:
                blob = entry.inline_payload
            else:
                blob = self.payload_store.load(entry.ptr)
            grants = sorted(self._grants.get(bytes(key), ()))
            flags = (0x01 if entry.mac is not None else 0) | (
                0x02 if entry.inline_payload is not None else 0
            )
            record = struct.pack(">H", len(key)) + bytes(key)
            record += struct.pack(">B", len(entry.k_operation))
            record += entry.k_operation
            record += struct.pack(">IB", entry.client_id, flags)
            if entry.mac is not None:
                record += entry.mac
            record += struct.pack(">H", len(grants))
            for grantee in grants:
                record += struct.pack(">I", grantee)
        sealed = seal_data(
            self.enclave, record, self._next_migration_iv(), aad=_MIGRATION_AAD
        )
        self.stats.entries_exported += 1
        return sealed, blob

    def import_entry(self, sealed_record: bytes, blob: bytes) -> bytes:
        """Install a migrated entry; returns the key.

        Raises :class:`~repro.errors.IntegrityError` when the record was
        tampered with or sealed by a different enclave binary, and
        :class:`ProtocolError` on a malformed record -- either way nothing
        is installed.
        """
        # The target must be a running shard before entries land in its
        # table; ``start()`` is idempotent, but a later first ``start()``
        # would re-run ``init_hashtable`` and drop everything imported.
        self._check_alive()
        self.start()
        record = unseal_data(self.enclave, sealed_record, aad=_MIGRATION_AAD)
        try:
            offset = 2
            (key_len,) = struct.unpack_from(">H", record, 0)
            key = record[offset : offset + key_len]
            if len(key) != key_len or key_len == 0:
                raise ProtocolError("migration record: bad key length")
            offset += key_len
            (k_len,) = struct.unpack_from(">B", record, offset)
            offset += 1
            k_operation = record[offset : offset + k_len]
            if len(k_operation) != k_len:
                raise ProtocolError("migration record: truncated key material")
            offset += k_len
            client_id, flags = struct.unpack_from(">IB", record, offset)
            offset += 5
            mac = None
            if flags & 0x01:
                mac = record[offset : offset + 16]
                if len(mac) != 16:
                    raise ProtocolError("migration record: truncated MAC")
                offset += 16
            (grant_count,) = struct.unpack_from(">H", record, offset)
            offset += 2
            grants = []
            for _ in range(grant_count):
                (grantee,) = struct.unpack_from(">I", record, offset)
                grants.append(grantee)
                offset += 4
        except struct.error as exc:
            raise ProtocolError(f"malformed migration record: {exc}") from exc
        if len(blob) < 16:
            raise ProtocolError("migrated payload shorter than its MAC")
        inline = bool(flags & 0x02)
        if inline:
            ptr = None
            inline_payload = bytes(blob)
            self.enclave.allocator.allocate(len(inline_payload), "inline_values")
        else:
            ptr = self.payload_store.store(bytes(blob))
            inline_payload = None
        entry = _Entry(
            k_operation=k_operation,
            ptr=ptr,
            client_id=client_id,
            mac=mac,
            inline_payload=inline_payload,
        )
        with self._table_lock.write():
            table = self._ensure_table()
            try:
                old = table.get(key)
            except KeyError:
                old = None
            table.put(key, entry)
            self._charge_table_growth()
        if old is not None:
            if old.ptr is not None:
                self.payload_store.release(old.ptr)
            if old.inline_payload is not None:
                self.enclave.allocator.free(
                    len(old.inline_payload), "inline_values"
                )
        if grants:
            self._grants[bytes(key)] = set(grants)
        self.stats.entries_imported += 1
        self._notify_replication("put", key)
        return key

    def evict_entry(self, key: bytes) -> None:
        """Drop ``key`` after a successful migration (frees all storage)."""
        self._check_alive()
        with self._table_lock.write():
            table = self._table
            entry = None
            if table is not None:
                try:
                    entry = table.delete(key)
                except KeyError:
                    entry = None
            self._grants.pop(bytes(key), None)
        if entry is None:
            raise KeyNotFoundError(key)
        if entry.ptr is not None:
            self.payload_store.release(entry.ptr)
        if entry.inline_payload is not None:
            self.enclave.allocator.free(len(entry.inline_payload), "inline_values")
        self._notify_replication("delete", key)

    # -- introspection -----------------------------------------------------------

    @property
    def key_count(self) -> int:
        """Number of keys currently stored."""
        return len(self._table) if self._table is not None else 0

    @property
    def client_count(self) -> int:
        """Number of admitted clients."""
        return len(self._channels)

    def trusted_working_set_bytes(self) -> int:
        """Enclave working set (what sgx-perf reports for Table 1)."""
        return self.enclave.trusted_bytes

    def queue_depth(self) -> int:
        """Requests visible in client rings but not yet consumed.

        The telemetry pipeline's queue-depth probe.  Non-destructive:
        peeks at ring headers without moving any read cursor.  A crashed
        server reports 0 (nothing will ever be consumed).
        """
        if self.crashed:
            return 0
        depth = 0
        for channel in self._channels.values():
            if channel.revoked:
                continue
            depth += channel.request_consumer.pending()
        return depth
