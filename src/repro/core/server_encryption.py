"""The Precursor *server-encryption* variant (the paper's second baseline).

Paper §5.1: "We compare the proposed Precursor client-encryption with a
Precursor server-encryption variant.  Clients and the server rely on RDMA
primitives.  However, the full payload is transported encrypted and copied
into the enclave, where its integrity and authenticity are checked.  Next,
we re-encrypt the payload and store it in the untrusted memory."

This is the conventional scheme of ShieldStore/EnclaveCache/SecureKeeper
(§2.4), kept on the same RDMA transport so the comparison isolates the cost
of server-side cryptography -- the ~27-49 % throughput gap of Figure 5 and
the client-encryption advantage of Figure 4.

Implementation notes: the whole request (opcode, oid, key **and value**)
travels inside the sealed control segment; there is no untrusted payload
half.  The enclave decrypts it (payload crosses the boundary), re-encrypts
the value under a server master key that never leaves the enclave, and
stores the sealed blob in the untrusted pool.  On GET the enclave loads,
decrypts with the master key, and re-seals under the client's session key.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.core.client import PrecursorClient
from repro.core.protocol import OpCode, Request, Status
from repro.core.server import PrecursorServer, ServerConfig, _ClientChannel
from repro.crypto.gcm import GcmFailure
from repro.crypto.keys import KeyGenerator
from repro.crypto.provider import SealedMessage
from repro.errors import (
    KeyNotFoundError,
    PrecursorError,
    ProtocolError,
    ReplayError,
)
from repro.rdma.fabric import Fabric

def _checked_unpack(fmt, data):
    """struct.unpack that reports truncation as a protocol violation.

    Malformed frames from rogue clients must surface as ProtocolError (the
    polling loop's drop-and-count path), never as a struct.error that
    would crash a trusted thread.
    """
    try:
        return struct.unpack(fmt, data)
    except struct.error as exc:
        raise ProtocolError(f"truncated field: {exc}") from exc


__all__ = ["PrecursorServerEncryption", "ServerEncryptionClient"]


@dataclass(frozen=True)
class _SEControl:
    """Sealed request body of the server-encryption scheme."""

    opcode: OpCode
    oid: int
    key: bytes
    value: Optional[bytes] = None

    def encode(self) -> bytes:
        head = struct.pack(">BQH", int(self.opcode), self.oid, len(self.key))
        if self.value is None:
            return head + self.key + struct.pack(">I", 0xFFFFFFFF)
        return (
            head
            + self.key
            + struct.pack(">I", len(self.value))
            + self.value
        )

    @classmethod
    def decode(cls, blob: bytes) -> "_SEControl":
        if len(blob) < 15:
            raise ProtocolError("SE control truncated")
        opcode_raw, oid, key_len = _checked_unpack(">BQH", blob[:11])
        try:
            opcode = OpCode(opcode_raw)
        except ValueError as exc:
            raise ProtocolError(f"unknown opcode {opcode_raw}") from exc
        cursor = 11
        key = blob[cursor : cursor + key_len]
        cursor += key_len
        if len(key) != key_len or cursor + 4 > len(blob):
            raise ProtocolError("SE control truncated")
        (value_len,) = _checked_unpack(">I", blob[cursor : cursor + 4])
        cursor += 4
        value = None
        if value_len != 0xFFFFFFFF:
            value = blob[cursor : cursor + value_len]
            cursor += value_len
            if len(value) != value_len:
                raise ProtocolError("SE control truncated in value")
        if cursor != len(blob):
            raise ProtocolError("SE control length mismatch")
        return cls(opcode=opcode, oid=oid, key=key, value=value)


@dataclass(frozen=True)
class _SEResponse:
    """Sealed response body of the server-encryption scheme."""

    status: Status
    oid: int
    value: Optional[bytes] = None

    def encode(self) -> bytes:
        head = struct.pack(">BQ", int(self.status), self.oid)
        if self.value is None:
            return head + struct.pack(">I", 0xFFFFFFFF)
        return head + struct.pack(">I", len(self.value)) + self.value

    @classmethod
    def decode(cls, blob: bytes) -> "_SEResponse":
        if len(blob) < 13:
            raise ProtocolError("SE response truncated")
        status_raw, oid = _checked_unpack(">BQ", blob[:9])
        try:
            status = Status(status_raw)
        except ValueError as exc:
            raise ProtocolError(f"unknown status {status_raw}") from exc
        (value_len,) = _checked_unpack(">I", blob[9:13])
        value = None
        if value_len != 0xFFFFFFFF:
            value = blob[13 : 13 + value_len]
            if len(value) != value_len:
                raise ProtocolError("SE response truncated in value")
            if 13 + value_len != len(blob):
                raise ProtocolError("SE response length mismatch")
        elif len(blob) != 13:
            raise ProtocolError("SE response length mismatch")
        return cls(status=status, oid=oid, value=value)


@dataclass
class _SEEntry:
    """Enclave table value: where the re-encrypted payload lives."""

    iv: bytes
    ptr: object  # PayloadPointer
    client_id: int


class PrecursorServerEncryption(PrecursorServer):
    """Precursor's transport/ring machinery with server-side encryption.

    The master key is generated inside the enclave at startup and never
    leaves it; every stored value is sealed under it with a unique IV.
    """

    HOST_NAME = "precursor-se-server"

    def __init__(
        self,
        fabric: Fabric = None,
        config: ServerConfig = None,
        keygen: KeyGenerator = None,
    ):
        super().__init__(fabric=fabric, config=config, keygen=keygen)
        # The engine caches the cipher per key: one key-schedule + GHASH
        # table expansion for the lifetime of the master key.
        self._master = self.provider.engine.gcm(
            self.provider.keygen.session_key()
        )
        self._storage_iv_counter = 0
        #: Bytes the enclave decrypted + re-encrypted (the cost Precursor
        #: eliminates; tests compare this against the client-encryption
        #: server, where it stays zero).
        self.enclave_crypto_bytes = 0

    def _next_storage_iv(self) -> bytes:
        # Storage IVs live in their own namespace (tag 0x5EA1ED) so they
        # can never collide with transport IVs (client_id || counter).
        self._storage_iv_counter += 1
        return struct.pack(">IQ", 0x5EA1ED, self._storage_iv_counter)

    def _process_control_blob(
        self, channel: _ClientChannel, control_blob: bytes, request: Request
    ) -> None:
        if request.payload is not None:
            self.stats.protocol_errors += 1
            return
        try:
            control = _SEControl.decode(control_blob)
        except ProtocolError:
            self.stats.protocol_errors += 1
            return
        try:
            self._replay.check_and_advance(channel.client_id, control.oid)
        except ReplayError:
            self.stats.replay_rejections += 1
            self._send_se_response(
                channel, _SEResponse(status=Status.REPLAY, oid=control.oid)
            )
            return
        if control.opcode is OpCode.PUT:
            self._se_put(channel, control)
        elif control.opcode is OpCode.GET:
            self._se_get(channel, control)
        elif control.opcode is OpCode.DELETE:
            self._se_delete(channel, control)

    def _se_put(self, channel: _ClientChannel, control: _SEControl) -> None:
        self.stats.puts += 1
        if control.value is None:
            self.stats.protocol_errors += 1
            self._send_se_response(
                channel, _SEResponse(status=Status.ERROR, oid=control.oid)
            )
            return
        # Re-encryption inside the enclave: the step Figure 1 prices.
        iv = self._next_storage_iv()
        sealed_value = self._master.seal(iv, control.value)
        self.enclave_crypto_bytes += 2 * len(control.value)
        ptr = self.payload_store.store(sealed_value)
        with self._table_lock.write():
            table = self._ensure_table()
            try:
                old = table.get(control.key)
            except KeyError:
                old = None
            table.put(
                control.key,
                _SEEntry(iv=iv, ptr=ptr, client_id=channel.client_id),
            )
            self._charge_table_growth()
        if old is not None:
            self.payload_store.release(old.ptr)
        self._send_se_response(
            channel, _SEResponse(status=Status.OK, oid=control.oid)
        )

    def _se_get(self, channel: _ClientChannel, control: _SEControl) -> None:
        self.stats.gets += 1
        with self._table_lock.read():
            entry = None
            sealed_value = None
            if self._table is not None:
                try:
                    entry = self._table.get(control.key)
                except KeyError:
                    entry = None
            if entry is not None:
                # Under the read lock: safe against concurrent compaction.
                sealed_value = self.payload_store.load(entry.ptr)
        if entry is None:
            self.stats.misses += 1
            self._send_se_response(
                channel, _SEResponse(status=Status.NOT_FOUND, oid=control.oid)
            )
            return
        self.stats.hits += 1
        try:
            value = self._master.open(entry.iv, sealed_value)
        except GcmFailure:
            # Untrusted memory corrupted: detected *server-side* here (in
            # client-encryption Precursor the client detects it instead).
            self._send_se_response(
                channel, _SEResponse(status=Status.ERROR, oid=control.oid)
            )
            return
        self.enclave_crypto_bytes += len(value)
        self._send_se_response(
            channel,
            _SEResponse(status=Status.OK, oid=control.oid, value=value),
        )

    def _se_delete(self, channel: _ClientChannel, control: _SEControl) -> None:
        self.stats.deletes += 1
        with self._table_lock.write():
            entry = None
            if self._table is not None:
                try:
                    entry = self._table.delete(control.key)
                except KeyError:
                    entry = None
        if entry is None:
            self.stats.misses += 1
            status = Status.NOT_FOUND
        else:
            self.payload_store.release(entry.ptr)
            status = Status.OK
        self._send_se_response(
            channel, _SEResponse(status=status, oid=control.oid)
        )

    def _send_se_response(
        self, channel: _ClientChannel, body: _SEResponse
    ) -> None:
        session = self._sessions[channel.client_id]
        aad = b"resp" + struct.pack(">I", channel.client_id)
        sealed = self.provider.transport_seal(session, body.encode(), aad=aad)
        from repro.core.protocol import Response

        channel.reply_producer.produce(
            Response(sealed_control=sealed, payload=None).encode()
        )


class ServerEncryptionClient(PrecursorClient):
    """Client for the server-encryption variant.

    No one-time keys, no client-side payload crypto: the value rides inside
    the transport-sealed blob and the server is trusted (via its enclave)
    to verify and re-encrypt it.
    """

    def _submit_se(self, control: _SEControl) -> None:
        aad = struct.pack(">I", self.client_id)
        sealed = self.provider.transport_seal(
            self.session, control.encode(), aad=aad
        )
        request = Request(
            client_id=self.client_id,
            sealed_control=sealed,
            reply_credit=self._reply_consumer.consumed,
        )
        self._submit(request)
        self.operations += 1

    def _open_se_response(self) -> _SEResponse:
        response = self._await_response()
        aad = b"resp" + struct.pack(">I", self.client_id)
        blob = self.provider.transport_open(
            self.session.key, response.sealed_control, aad=aad
        )
        body = _SEResponse.decode(blob)
        if body.oid != self._oid:
            raise ProtocolError(
                f"response oid {body.oid} does not match request {self._oid}"
            )
        if body.status is Status.REPLAY:
            raise ReplayError(f"server rejected oid {self._oid} as a replay")
        return body

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value``; the server performs all payload cryptography."""
        self._check_key(key)
        self._oid += 1
        self._submit_se(
            _SEControl(opcode=OpCode.PUT, oid=self._oid, key=key, value=value)
        )
        body = self._open_se_response()
        if body.status is not Status.OK:
            raise PrecursorError(f"put failed: {body.status.name}")

    def get(self, key: bytes) -> bytes:
        """Fetch ``key``; the value arrives transport-sealed, not raw."""
        self._check_key(key)
        self._oid += 1
        self._submit_se(_SEControl(opcode=OpCode.GET, oid=self._oid, key=key))
        body = self._open_se_response()
        if body.status is Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if body.status is not Status.OK or body.value is None:
            raise PrecursorError(f"get failed: {body.status.name}")
        return body.value

    def delete(self, key: bytes) -> None:
        """Remove ``key``."""
        self._check_key(key)
        self._oid += 1
        self._submit_se(
            _SEControl(opcode=OpCode.DELETE, oid=self._oid, key=key)
        )
        body = self._open_se_response()
        if body.status is Status.NOT_FOUND:
            raise KeyNotFoundError(key)
        if body.status is not Status.OK:
            raise PrecursorError(f"delete failed: {body.status.name}")
