"""Real-thread server driver: trusted polling threads over client subsets.

Paper §3.8: "Precursor runs a collection of threads equal to the number
of CPU cores: trusted threads in the enclave and worker threads in the
untrusted region.  A trusted thread ... detects new client requests by
polling a subset of circular buffers, then verifies transport
confidentiality and integrity, and finally handles the request."

:class:`ServerThreadPool` reproduces that structure with Python threads:
thread ``i`` polls the rings of clients with ``client_id % threads == i``.
Per-client state (ring cursors, replay counters, reply producers) is
therefore single-owner; the shared structures are protected by the
in-enclave read-write lock (hash table) and a pool lock (payload store).

Clients driven against a threaded server must be constructed with
``auto_pump=False`` and a ``response_timeout_s`` so they spin-wait on
their reply ring instead of pumping the server inline.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.server import PrecursorServer
from repro.errors import ConfigurationError

__all__ = ["ServerThreadPool"]


class ServerThreadPool:
    """Runs a Precursor server's polling loop on real threads."""

    def __init__(
        self,
        server: PrecursorServer,
        threads: int = 4,
        idle_sleep_s: float = 20e-6,
        max_idle_sleep_s: float = 1e-3,
    ):
        if threads < 1:
            raise ConfigurationError(f"need at least one thread: {threads}")
        if max_idle_sleep_s < idle_sleep_s:
            raise ConfigurationError(
                f"max_idle_sleep_s ({max_idle_sleep_s}) must be >= "
                f"idle_sleep_s ({idle_sleep_s})"
            )
        self.server = server
        self.thread_count = threads
        self.idle_sleep_s = idle_sleep_s
        #: Ceiling of the adaptive idle backoff (see :meth:`_run`).
        self.max_idle_sleep_s = max_idle_sleep_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        #: Requests handled per thread (diagnostics).
        self.handled: List[int] = [0] * threads
        #: Idle sleeps taken per thread (diagnostics for the backoff).
        self.idle_sleeps: List[int] = [0] * threads
        #: Exceptions that killed a worker.  A trusted polling thread
        #: has nobody above it to report to, so a raising
        #: ``process_client`` (ring overrun, crashed shard) previously
        #: died silently and read as a stall; harnesses can now assert
        #: ``pool.errors == []`` or inspect why a worker stopped.
        self.errors: List[BaseException] = []

    def _client_ids_for(self, index: int) -> List[int]:
        # Snapshot: the admission path may add clients concurrently.
        return [
            client_id
            for client_id in list(self.server._channels)
            if client_id % self.thread_count == index
        ]

    def _run(self, index: int) -> None:
        server = self.server
        # Adaptive poll/sleep: poll hard while frames arrive, back off
        # exponentially (doubling per empty pass, capped) once the rings
        # go quiet, and snap back to hot polling on the first frame.  A
        # busy server never sleeps; an idle one stops burning the GIL.
        sleep_s = self.idle_sleep_s
        try:
            while not self._stop.is_set():
                busy = 0
                # Re-list each pass: clients may connect while we run.
                for client_id in self._client_ids_for(index):
                    busy += server.process_client(client_id)
                self.handled[index] += busy
                if busy:
                    sleep_s = self.idle_sleep_s
                else:
                    # A real trusted thread spins; in-process we yield the
                    # GIL so client threads can make progress.
                    self.idle_sleeps[index] += 1
                    time.sleep(sleep_s)
                    sleep_s = min(sleep_s * 2, self.max_idle_sleep_s)
        except Exception as exc:
            # The worker still dies (matching a real trusted thread that
            # faulted), but the cause is recorded instead of swallowed.
            self.errors.append(exc)

    def start(self) -> None:
        """Start the polling threads (idempotent)."""
        if self._threads:
            return
        self.server.start()
        self._stop.clear()
        self.errors.clear()
        for index in range(self.thread_count):
            thread = threading.Thread(
                target=self._run,
                args=(index,),
                name=f"precursor-trusted-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop and join every polling thread."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads.clear()

    def __enter__(self) -> "ServerThreadPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.stop()
        return None

    @property
    def total_handled(self) -> int:
        """Requests handled across all threads so far."""
        return sum(self.handled)
