"""Replay protection: per-client operation identifiers.

Every request carries a unique sequence number ``oid`` authenticated inside
the sealed control data (paper §3.7, Algorithm 1 l.5).  The enclave "keeps
an array indexed by a client identifier, where each entry holds the most
recent oid" (Algorithm 2 l.4-5): a request is accepted only when its oid is
exactly the expected next value, then the expectation advances.  Replays --
and, with authenticated control data, any reordering an attacker could
force -- are detected and discarded.

This state lives in trusted memory: 1 byte of oid plus the 4-byte client id
per client in the paper's layout (§4); the guard reports its nominal
trusted footprint for working-set accounting.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ReplayError

__all__ = ["ReplayGuard"]


class ReplayGuard:
    """Tracks the next expected oid per client."""

    #: Nominal trusted bytes per tracked client (oid + client id, §4).
    TRUSTED_BYTES_PER_CLIENT = 5

    def __init__(self) -> None:
        self._expected: Dict[int, int] = {}
        self.rejected = 0

    def register_client(self, client_id: int) -> None:
        """Start tracking a client; its first request must carry oid 1."""
        if client_id in self._expected:
            raise ReplayError(f"client {client_id} already registered")
        self._expected[client_id] = 1

    def check_and_advance(self, client_id: int, oid: int) -> None:
        """Accept ``oid`` if it is the expected next value, else raise.

        Mirrors Algorithm 2 lines 4-6: on match the expectation advances;
        on mismatch the request is discarded (we raise
        :class:`ReplayError` and count the rejection).
        """
        expected = self._expected.get(client_id)
        if expected is None:
            self.rejected += 1
            raise ReplayError(f"unknown client {client_id}")
        if oid != expected:
            self.rejected += 1
            raise ReplayError(
                f"client {client_id}: oid {oid} != expected {expected} "
                "(replayed or dropped request)"
            )
        self._expected[client_id] = expected + 1

    def is_registered(self, client_id: int) -> bool:
        """Whether ``client_id`` is being tracked."""
        return client_id in self._expected

    def expected_oid(self, client_id: int) -> int:
        """The oid the next request from ``client_id`` must carry."""
        expected = self._expected.get(client_id)
        if expected is None:
            raise ReplayError(f"unknown client {client_id}")
        return expected

    @property
    def client_count(self) -> int:
        """Number of registered clients."""
        return len(self._expected)

    def trusted_bytes(self) -> int:
        """Nominal trusted memory this state occupies."""
        return self.client_count * self.TRUSTED_BYTES_PER_CLIENT
