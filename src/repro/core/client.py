"""The Precursor client: the "precursor" that does the heavy lifting.

Precursor's headline design decision (paper §3.2-3.3) is to move payload
cryptography to the client: before a ``put()`` the client generates a fresh
one-time key, encrypts the value with it, MACs the ciphertext, and seals
only the tiny control segment to the enclave (Algorithm 1).  After a
``get()`` it receives the raw ciphertext from untrusted server memory plus
the one-time key over the sealed channel, recomputes the MAC and decrypts
-- so the *client*, not the server, verifies integrity and freshness.

The transport is one-sided RDMA in both directions: requests are WRITTEN
into the server's per-client ring; replies appear in a client-local reply
ring the server WRITEs into; request-ring credits arrive in a one-sided
credit word.
"""

from __future__ import annotations

import itertools
import struct
import time
from typing import Callable, Optional

from repro.core.protocol import (
    ControlData,
    OpCode,
    Request,
    Response,
    ResponseControl,
    Status,
)
from repro.core.ring_buffer import RingConsumer, RingProducer
from repro.core.server import PrecursorServer
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.crypto.provider import CryptoProvider, EncryptedPayload
from repro.errors import (
    AccessError,
    AuthenticationError,
    CapacityError,
    IntegrityError,
    KeyNotFoundError,
    OperationTimeoutError,
    PrecursorError,
    ProtocolError,
    ReplayError,
    ShardUnavailableError,
)
from repro.obs import ObsContext, Trace
from repro.rdma.memory import AccessFlags
from repro.rdma.verbs import Opcode as RdmaOpcode
from repro.rdma.verbs import WorkRequest
from repro.sgx.attestation import attest_and_establish_session

__all__ = ["PrecursorClient", "allocate_client_id"]

_client_ids = itertools.count(1)

#: Sentinel returned by :meth:`PrecursorClient._exchange` when the server's
#: replay filter confirmed a retried request was already applied but no
#: cached reply could be recovered (e.g. after a crash-restart).
_APPLIED = object()


def allocate_client_id() -> int:
    """Reserve the next client id from the shared process-wide counter.

    A sharded router (:mod:`repro.shard.router`) opens one session per
    shard under a *single* identity -- the same client id on every shard
    -- so per-tenant ownership survives key migration between shards.
    Drawing from the same counter as auto-assigned ids keeps direct
    clients and routed clients collision-free in one process.
    """
    return next(_client_ids)


class PrecursorClient:
    """A connected Precursor client.

    Parameters
    ----------
    server:
        The :class:`~repro.core.server.PrecursorServer` to attach to (both
        must share one fabric).
    client_id:
        Optional explicit id; auto-assigned when omitted.
    keygen:
        Source of one-time keys/IVs.  Pass a seeded generator for
        reproducible runs.
    auto_pump:
        When True (default), each operation pumps the server's polling
        loop so the in-process pair behaves synchronously.  Disable to
        drive the server explicitly (e.g. batched or multi-client tests).
    expected_measurement:
        The enclave measurement to attest against; defaults to the
        server's true measurement.  Passing a wrong value makes the
        handshake fail -- that is the point of attestation.
    response_timeout_s:
        When set (and ``auto_pump`` is False), operations spin-wait on
        the reply ring up to this many seconds -- the mode used against a
        threaded server (:class:`~repro.core.threading.ServerThreadPool`),
        where another thread fills the ring.
    max_retries:
        Per-operation retry budget (default 0: fail fast, the historical
        behaviour).  With retries enabled, a transport fault or reply
        timeout triggers reconnect-and-resubmit under the *same* ``oid``,
        so the server's replay filter deduplicates a request that was
        already applied -- retried PUTs never double-apply and GETs are
        idempotent (``docs/FAULTS.md``).
    retry_backoff_s / retry_backoff_cap_s:
        Capped exponential backoff between attempts: the Nth retry sleeps
        ``min(cap, backoff * 2**(N-1))`` seconds.
    obs:
        Observability context to trace operations into; defaults to the
        *server's* context so client- and server-side stages of one
        operation land in the same trace (``docs/OBSERVABILITY.md``).
    trace_ops:
        When True (default), every single-key ``get``/``put``/``delete``
        records an end-to-end span trace.  Disable for micro-benchmarks
        that cannot afford the few clock reads per operation.
    """

    def __init__(
        self,
        server: PrecursorServer,
        client_id: Optional[int] = None,
        keygen: Optional[KeyGenerator] = None,
        auto_pump: bool = True,
        expected_measurement: Optional[bytes] = None,
        response_timeout_s: Optional[float] = None,
        obs: Optional[ObsContext] = None,
        trace_ops: bool = True,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0002,
        retry_backoff_cap_s: float = 0.01,
    ):
        self.response_timeout_s = response_timeout_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.obs = obs if obs is not None else server.obs
        self._trace_ops = trace_ops
        self.client_id = client_id if client_id is not None else next(_client_ids)
        self.keygen = keygen if keygen is not None else KeyGenerator()
        self.provider = CryptoProvider(self.keygen)
        self._pump: Optional[Callable[[], int]] = (
            server.process_pending if auto_pump else None
        )
        self._server = server

        # Attestation + RDMA bootstrap; reused verbatim by reconnect().
        self._expected_measurement = expected_measurement
        self.fabric = server.fabric
        self._host = f"client-{self.client_id}"
        self.pd = self.fabric.add_host(self._host)
        self._establish(reconnect=False)
        self._oid = 0

        #: Client-side operation counters.
        self.operations = 0
        self.integrity_failures = 0
        self.retries = 0
        self.reconnects = 0
        #: Verified payload MAC of the most recent successful ``get``.
        self.last_payload_mac: Optional[bytes] = None

        #: Chaos seam (repro.faults): called with the encoded frame after
        #: each submit; returning True makes the client post the frame
        #: again (a duplicated RDMA write -- the server must deduplicate).
        self.submit_fault_hook: Optional[Callable[[bytes], bool]] = None

    def _establish(self, reconnect: bool) -> None:
        """Attest, connect a fresh QP pair, and (re)register the rings.

        1. Remote attestation establishes trust and the session key (§3.6).
        2. RDMA bootstrap: register local regions, connect QPs, learn the
           server's buffer window (rkey + layout).

        Both the first admission and every reconnect run the full
        handshake -- a QP that dropped to ERR cannot be trusted to carry a
        stale session, so re-attestation mints a fresh session key while
        the enclave keeps the client's replay expectation.
        """
        server = self._server
        measurement = (
            self._expected_measurement
            if self._expected_measurement is not None
            else server.enclave.measurement
        )
        self.session = attest_and_establish_session(
            server.enclave, measurement, self.client_id, self.keygen
        )

        self._qp, server_qp = self.fabric.create_qp_pair(
            self._host, server.HOST_NAME
        )

        # Reply ring and credit word live in *client* memory; the server
        # writes both with one-sided WRITEs.
        self._credit_region = self.pd.register(
            8, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )
        layout_probe = server.config
        reply_bytes = layout_probe.ring_slots * layout_probe.ring_slot_size
        self._reply_region = self.pd.register(
            reply_bytes, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )

        admit = server.reconnect_client if reconnect else server.add_client
        request_rkey, layout = admit(
            self.client_id,
            self.session.key,
            server_qp,
            reply_rkey=self._reply_region.rkey,
            credit_rkey=self._credit_region.rkey,
        )
        self._layout = layout
        self._request_rkey = request_rkey
        self._producer = RingProducer(layout, write_remote=self._write_request)
        self._reply_consumer = RingConsumer(layout, self._reply_region)

    def reconnect(self) -> None:
        """Restore service after a transport fault left the QP in ERR.

        Re-runs the full admission handshake: re-attestation (fresh
        session key), a fresh QP pair, and fresh request/reply rings on
        both sides.  The ``oid`` sequence continues where it left off --
        the server kept (or restored) the replay expectation -- so an
        operation that was in flight when the connection died can be
        resubmitted under its original oid and deduplicated.

        Raises :class:`~repro.errors.ShardUnavailableError` while the
        server is crashed; once it restarts, reconnection succeeds.

        Returns the oid the server's replay filter expects next -- the
        resync point the retry engine uses to keep the sequence in
        lockstep after lost requests.
        """
        if self._server.crashed:
            raise ShardUnavailableError(
                f"server {self._server.shard_name or self._server.HOST_NAME!r}"
                " is down; reconnect after it restarts"
            )
        self._establish(reconnect=True)
        self.reconnects += 1
        self.obs.hop(
            "reconnect",
            shard=self._server.shard_name or self._server.HOST_NAME,
        )
        self.obs.registry.counter(
            "recoveries_total",
            "recovery actions taken",
            {"kind": "reconnect"},
        ).inc()
        return self._server.replay_expected(self.client_id)

    def revive(self) -> None:
        """Reconnect an *idle* session and realign the oid sequence.

        For sessions a router parked while another replica served the
        shard: the server behind them may have restarted since (wiping
        its replay table), so after the reconnect handshake the next
        operation picks up at whatever oid the filter expects.  Only
        valid between operations -- the in-flight retry engine does its
        own oid resync and must keep the current oid pinned instead.
        """
        expected = self.reconnect()
        if expected is not None:
            self._oid = expected - 1

    @property
    def server(self) -> PrecursorServer:
        """The server this client is attached to (router introspection)."""
        return self._server

    # -- transport ------------------------------------------------------------

    def _write_request(self, offset: int, data: bytes) -> None:
        self.fabric.post_send(
            self._qp,
            WorkRequest(
                wr_id=self._oid,
                opcode=RdmaOpcode.RDMA_WRITE,
                data=data,
                remote_rkey=self._request_rkey,
                remote_offset=offset,
                signaled=False,
                inline=len(data) <= self._qp.max_inline,
            ),
        )

    def _refresh_credits(self) -> None:
        (consumed,) = struct.unpack(">Q", self._credit_region.read_local(0, 8))
        # The credit word lives in client memory the *server* writes -- but
        # any holder of the rkey could forge it.  Sanitize before applying:
        # never above what we actually produced, never regressing.  A
        # forged credit can then at worst delay us, not make us overwrite
        # unprocessed slots.
        consumed = min(consumed, self._producer._sequence)
        if consumed > self._producer._consumed:
            self._producer.credit_update(consumed)

    def _submit(self, request: Request) -> None:
        frame = request.encode()
        self._refresh_credits()
        try:
            self._producer.produce(frame)
        except CapacityError:
            # Ring full: let the server drain, pick up fresh credits, retry.
            if self._pump is not None:
                self._pump()
            elif self.response_timeout_s:
                deadline = time.monotonic() + self.response_timeout_s
                self._refresh_credits()
                while (
                    self._producer.free_slots <= 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(5e-6)
                    self._refresh_credits()
            self._refresh_credits()
            self._producer.produce(frame)
        hook = self.submit_fault_hook
        if hook is not None and hook(frame):
            try:
                self._producer.produce(frame)  # duplicated in-flight frame
            except CapacityError:
                pass  # ring full: the duplicate is simply lost

    def drain_replies(self) -> int:
        """Discard every queued reply frame; returns the number dropped.

        Error-path resync for batched callers (e.g. the shard router):
        when a pipelined batch aborts mid-window, replies for the already
        submitted remainder are still in flight, and the next operation
        would otherwise read one of them and fail the oid match.
        """
        if self._pump is not None:
            self._pump()
        dropped = 0
        while True:
            frame = self._reply_consumer.poll_one()
            if frame is None:
                break
            dropped += 1
        return dropped

    def _await_response(self) -> Response:
        if self._pump is not None:
            self._pump()
        frame = self._reply_consumer.poll_one()
        if frame is None and self._pump is None and self.response_timeout_s:
            # Threaded-server mode: a trusted thread elsewhere fills the
            # reply ring; spin until it does (or the deadline passes).
            deadline = time.monotonic() + self.response_timeout_s
            while frame is None and time.monotonic() < deadline:
                time.sleep(5e-6)
                frame = self._reply_consumer.poll_one()
        if frame is None:
            raise OperationTimeoutError(
                "no response available; pump the server (process_pending) "
                "when auto_pump is disabled -- or the request/reply was "
                "lost in transit"
            )
        return Response.decode(frame)

    def _open_control(self, response: Response) -> ResponseControl:
        """Authenticate and decode a reply's sealed control segment."""
        aad = b"resp" + struct.pack(">I", self.client_id)
        blob = self.provider.transport_open(
            self.session.key, response.sealed_control, aad=aad
        )
        return ResponseControl.decode(blob)

    def _open_response(
        self, response: Response, expected_oid: Optional[int] = None
    ) -> ResponseControl:
        control = self._open_control(response)
        if expected_oid is None:
            expected_oid = self._oid
        if control.oid != expected_oid:
            raise ProtocolError(
                f"response oid {control.oid} does not match request "
                f"{expected_oid}"
            )
        if control.status is Status.REPLAY:
            raise ReplayError(f"server rejected oid {self._oid} as a replay")
        return control

    def _collect_reply(
        self, expected_oid: int
    ) -> "tuple[Response, ResponseControl]":
        """Await the reply for ``expected_oid``.

        In retry mode, replies for *earlier* oids may still be queued --
        the cached ack a duplicate triggered, or the late reply of an
        operation that was already resolved by a retry.  Those are
        skipped; a reply from the *future* is still a protocol violation.
        """
        while True:
            response = self._await_response()
            with self.obs.tracer.stage("client.open_response"):
                control = self._open_control(response)
            if control.oid < expected_oid and self.max_retries > 0:
                continue
            if control.oid != expected_oid:
                raise ProtocolError(
                    f"response oid {control.oid} does not match request "
                    f"{expected_oid}"
                )
            if control.status is Status.REPLAY:
                raise ReplayError(
                    f"server rejected oid {expected_oid} as a replay"
                )
            return response, control

    # -- retry engine ----------------------------------------------------------

    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff_s <= 0:
            return
        delay = min(
            self.retry_backoff_cap_s,
            self.retry_backoff_s * (2 ** (attempt - 1)),
        )
        time.sleep(delay)

    def _count_retry(self, op: str) -> None:
        self.retries += 1
        self.obs.hop(
            "retry",
            shard=self._server.shard_name or self._server.HOST_NAME,
            op=op,
        )
        self.obs.registry.counter(
            "retries_total", "client operation retries", {"op": op}
        ).inc()

    def _resync_after_failure(self, control: ControlData) -> None:
        """Re-align the local oid counter after an operation failed for good.

        ``_next_control`` consumed an oid the server may never have seen;
        leaving ``_oid`` ahead of the replay expectation would make every
        subsequent operation a permanent oid mismatch.  Ask the filter
        where it stands and step back so the next operation re-uses the
        orphaned oid.  When the server is unreachable the later
        :meth:`reconnect` performs the same resync.
        """
        try:
            expected = self._server.replay_expected(self.client_id)
        except PrecursorError:
            return
        if expected <= control.oid and self._oid == control.oid:
            self._oid = expected - 1

    def _exchange(self, control: ControlData, payload=None, op: str = "op"):
        """Submit one sealed request and collect its reply, with retries.

        Returns ``(response, response_control)`` -- or the :data:`_APPLIED`
        sentinel when a retry learned from the replay filter that the
        original attempt was applied but its reply is unrecoverable.

        The retry loop is replay-safe by construction: every attempt
        re-seals the *same* control data (same oid, same one-time key) and
        re-ships the *same* ciphertext, so the server either applies it
        once or recognises the duplicate and re-sends the cached ack.
        Each retry performs a full :meth:`reconnect` -- a lost ring write
        desynchronises the ring sequence, so fresh rings (and a fresh QP,
        and re-attestation) are the uniform recovery action.
        """
        attempt = 0
        while True:
            try:
                with self.obs.tracer.stage("client.seal_request"):
                    request = self._seal_control(control)
                    if payload is not None:
                        request = Request(
                            client_id=request.client_id,
                            sealed_control=request.sealed_control,
                            payload=payload,
                            reply_credit=request.reply_credit,
                        )
                with self.obs.tracer.stage("client.rdma_write"):
                    self._submit(request)
                return self._collect_reply(control.oid)
            except (
                AccessError,
                OperationTimeoutError,
                AuthenticationError,
                ProtocolError,
            ):
                # Transport-shaped failures: lost/duplicated/corrupted
                # frame or a dead QP.  Retry under the same oid.
                if attempt >= self.max_retries:
                    self._resync_after_failure(control)
                    raise
            except ReplayError:
                if attempt == 0:
                    raise
                # A retried request hit the replay filter without a cached
                # reply: the original WAS applied (only this client can
                # advance its oid), the ack is simply gone -- e.g. the
                # server crash-restarted in between.
                return _APPLIED
            attempt += 1
            self._count_retry(op)
            self._backoff(attempt)
            expected = self.reconnect()
            if expected is not None and expected < control.oid:
                # The filter has not advanced past an *earlier* oid: the
                # monotonic expectation proves none of the intervening
                # requests were applied (sealed checkpoints cannot roll it
                # back).  Re-key this attempt at the expected oid so the
                # two sides resume in lockstep.
                control = ControlData(
                    opcode=control.opcode,
                    oid=expected,
                    key=control.key,
                    k_operation=control.k_operation,
                )
                self._oid = expected

    def _next_control(
        self, opcode: OpCode, key: bytes, k_operation: Optional[bytes] = None
    ) -> ControlData:
        self._oid += 1
        return ControlData(
            opcode=opcode, oid=self._oid, key=key, k_operation=k_operation
        )

    def _seal_control(self, control: ControlData) -> Request:
        aad = struct.pack(">I", self.client_id)
        sealed = self.provider.transport_seal(
            self.session, control.encode(), aad=aad
        )
        return Request(
            client_id=self.client_id,
            sealed_control=sealed,
            reply_credit=self._reply_consumer.consumed,
        )

    # -- tracing ---------------------------------------------------------------

    def _start_trace(self, op: str) -> Optional[Trace]:
        """Begin an end-to-end span trace for one operation.

        Returns None when tracing is disabled or a trace is already active
        (batched operations interleave submissions and replies, so only
        single-key operations are traced per-op).
        """
        if not self._trace_ops:
            return None
        tracer = self.obs.tracer
        if tracer.current is not None:
            return None
        return tracer.start(op, client_id=self.client_id)

    # -- key-value API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> bytes:
        """Store ``value`` under ``key`` (Algorithm 1).

        Generates a fresh one-time key, encrypts and MACs the value
        client-side, and ships ciphertext+MAC as the untrusted payload next
        to the sealed control data.  Returns the payload MAC -- the
        client-held freshness token for this acknowledged write (a retry
        re-ships the identical ciphertext, so the MAC survives the retry
        engine; see :mod:`repro.replica.freshness`).
        """
        self._check_key(key)
        trace = self._start_trace("put")
        try:
            with self.obs.tracer.stage("client.encrypt_payload"):
                k_operation = self.keygen.operation_key()
                payload = self.provider.payload_encrypt(k_operation, value)
            control = self._next_control(OpCode.PUT, key, k_operation)
            self.operations += 1
            result = self._exchange(control, payload=payload, op="put")
            if result is not _APPLIED:
                _response, control_resp = result
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"put failed: {control_resp.status.name}"
                    )
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()
        return payload.mac

    def get(self, key: bytes) -> bytes:
        """Fetch and verify the value stored under ``key``.

        The payload arrives as raw ciphertext from untrusted memory; the
        one-time key arrives inside the sealed control data.  The client
        recomputes the MAC and decrypts -- any tampering with the server's
        untrusted memory raises :class:`IntegrityError` here.
        """
        self._check_key(key)
        trace = self._start_trace("get")
        try:
            fresh_issues = 0
            while True:
                control = self._next_control(OpCode.GET, key)
                self.operations += 1
                result = self._exchange(control, op="get")
                if result is _APPLIED:
                    # The earlier attempt was consumed server-side but its
                    # reply is unrecoverable.  GET has no side effects:
                    # simply re-issue it under a fresh oid.
                    if fresh_issues >= max(1, self.max_retries):
                        raise OperationTimeoutError(
                            f"get {key!r}: reply unrecoverable after "
                            f"{fresh_issues} fresh re-issues"
                        )
                    fresh_issues += 1
                    self._count_retry("get")
                    continue
                response, control_resp = result
                break
            if control_resp.status is Status.NOT_FOUND:
                raise KeyNotFoundError(key)
            if control_resp.status is not Status.OK:
                raise PrecursorError(f"get failed: {control_resp.status.name}")
            if response.payload is None or control_resp.k_operation is None:
                raise ProtocolError(
                    "GET response missing payload or key material"
                )
            payload = response.payload
            if control_resp.mac is not None:
                # Strict-integrity mode (§3.9): the MAC bound inside the
                # sealed channel overrides whatever sits in untrusted memory.
                payload = EncryptedPayload(
                    ciphertext=payload.ciphertext, mac=control_resp.mac
                )
            try:
                with self.obs.tracer.stage("client.verify_decrypt"):
                    value = self.provider.payload_decrypt(
                        control_resp.k_operation, payload
                    )
            except IntegrityError:
                self.integrity_failures += 1
                raise
            # Verified MAC of the value just served -- routers compare it
            # against the last acked write to catch stale failover state.
            self.last_payload_mac = payload.mac
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()
        return value

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent."""
        self._check_key(key)
        trace = self._start_trace("delete")
        try:
            control = self._next_control(OpCode.DELETE, key)
            self.operations += 1
            result = self._exchange(control, op="delete")
            if result is not _APPLIED:
                _response, control_resp = result
                if control_resp.status is Status.NOT_FOUND:
                    raise KeyNotFoundError(key)
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"delete failed: {control_resp.status.name}"
                    )
            # _APPLIED: the delete was consumed server-side and only the
            # ack was lost -- the key is gone either way, report success.
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()

    # -- batched operations ----------------------------------------------------

    def _batch_window(self) -> int:
        """Outstanding requests per pipelined batch.

        Bounded to half the ring depth so neither the request ring nor the
        reply ring (both ``slot_count`` deep) can overflow while replies
        are still unconsumed.
        """
        return max(1, self._layout.slot_count // 2)

    def put_many(self, items) -> int:
        """Pipeline several puts: submit a window of frames, then collect.

        Amortises server pumping and exploits the ring's depth (with
        selective signaling, batches are how one-sided designs reach their
        throughput).  Returns the number of stored items; raises on the
        first failed reply.
        """
        items = list(items)
        window = self._batch_window()
        stored = 0
        for start in range(0, len(items), window):
            pending = []
            for key, value in items[start : start + window]:
                self._check_key(key)
                k_operation = self.keygen.operation_key()
                payload = self.provider.payload_encrypt(k_operation, value)
                control = self._next_control(OpCode.PUT, key, k_operation)
                request = self._seal_control(control)
                request = Request(
                    client_id=request.client_id,
                    sealed_control=request.sealed_control,
                    payload=payload,
                    reply_credit=request.reply_credit,
                )
                self._submit(request)
                pending.append(control.oid)
            self.operations += len(pending)
            for oid in pending:
                control_resp = self._open_response(self._await_response(), oid)
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"batched put failed at oid {oid}: "
                        f"{control_resp.status.name}"
                    )
                stored += 1
        return stored

    def get_many(self, keys) -> list:
        """Pipeline several gets; returns values aligned with ``keys``.

        Raises :class:`KeyNotFoundError` on the first missing key and
        :class:`IntegrityError` if any fetched payload fails verification.
        """
        keys = list(keys)
        window = self._batch_window()
        values = []
        for start in range(0, len(keys), window):
            pending = []
            for key in keys[start : start + window]:
                self._check_key(key)
                control = self._next_control(OpCode.GET, key)
                self._submit(self._seal_control(control))
                pending.append((control.oid, key))
            self.operations += len(pending)
            for oid, key in pending:
                response = self._await_response()
                control_resp = self._open_response(response, oid)
                if control_resp.status is Status.NOT_FOUND:
                    raise KeyNotFoundError(key)
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"batched get failed: {control_resp.status.name}"
                    )
                if response.payload is None or control_resp.k_operation is None:
                    raise ProtocolError(
                        "GET response missing payload or key material"
                    )
                payload = response.payload
                if control_resp.mac is not None:
                    payload = EncryptedPayload(
                        ciphertext=payload.ciphertext, mac=control_resp.mac
                    )
                values.append(
                    self.provider.payload_decrypt(
                        control_resp.k_operation, payload
                    )
                )
        return values

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise ProtocolError("keys must be non-empty bytes")
