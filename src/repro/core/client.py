"""The Precursor client: the "precursor" that does the heavy lifting.

Precursor's headline design decision (paper §3.2-3.3) is to move payload
cryptography to the client: before a ``put()`` the client generates a fresh
one-time key, encrypts the value with it, MACs the ciphertext, and seals
only the tiny control segment to the enclave (Algorithm 1).  After a
``get()`` it receives the raw ciphertext from untrusted server memory plus
the one-time key over the sealed channel, recomputes the MAC and decrypts
-- so the *client*, not the server, verifies integrity and freshness.

The transport is one-sided RDMA in both directions: requests are WRITTEN
into the server's per-client ring; replies appear in a client-local reply
ring the server WRITEs into; request-ring credits arrive in a one-sided
credit word.
"""

from __future__ import annotations

import itertools
import struct
import time
from typing import Callable, Optional

from repro.core.protocol import (
    ControlData,
    OpCode,
    Request,
    Response,
    ResponseControl,
    Status,
)
from repro.core.ring_buffer import RingConsumer, RingProducer
from repro.core.server import PrecursorServer
from repro.crypto.keys import KeyGenerator, SessionKey
from repro.crypto.provider import CryptoProvider, EncryptedPayload
from repro.errors import (
    AuthenticationError,
    CapacityError,
    IntegrityError,
    KeyNotFoundError,
    PrecursorError,
    ProtocolError,
    ReplayError,
)
from repro.obs import ObsContext, Trace
from repro.rdma.memory import AccessFlags
from repro.rdma.verbs import Opcode as RdmaOpcode
from repro.rdma.verbs import WorkRequest
from repro.sgx.attestation import attest_and_establish_session

__all__ = ["PrecursorClient", "allocate_client_id"]

_client_ids = itertools.count(1)


def allocate_client_id() -> int:
    """Reserve the next client id from the shared process-wide counter.

    A sharded router (:mod:`repro.shard.router`) opens one session per
    shard under a *single* identity -- the same client id on every shard
    -- so per-tenant ownership survives key migration between shards.
    Drawing from the same counter as auto-assigned ids keeps direct
    clients and routed clients collision-free in one process.
    """
    return next(_client_ids)


class PrecursorClient:
    """A connected Precursor client.

    Parameters
    ----------
    server:
        The :class:`~repro.core.server.PrecursorServer` to attach to (both
        must share one fabric).
    client_id:
        Optional explicit id; auto-assigned when omitted.
    keygen:
        Source of one-time keys/IVs.  Pass a seeded generator for
        reproducible runs.
    auto_pump:
        When True (default), each operation pumps the server's polling
        loop so the in-process pair behaves synchronously.  Disable to
        drive the server explicitly (e.g. batched or multi-client tests).
    expected_measurement:
        The enclave measurement to attest against; defaults to the
        server's true measurement.  Passing a wrong value makes the
        handshake fail -- that is the point of attestation.
    response_timeout_s:
        When set (and ``auto_pump`` is False), operations spin-wait on
        the reply ring up to this many seconds -- the mode used against a
        threaded server (:class:`~repro.core.threading.ServerThreadPool`),
        where another thread fills the ring.
    obs:
        Observability context to trace operations into; defaults to the
        *server's* context so client- and server-side stages of one
        operation land in the same trace (``docs/OBSERVABILITY.md``).
    trace_ops:
        When True (default), every single-key ``get``/``put``/``delete``
        records an end-to-end span trace.  Disable for micro-benchmarks
        that cannot afford the few clock reads per operation.
    """

    def __init__(
        self,
        server: PrecursorServer,
        client_id: Optional[int] = None,
        keygen: Optional[KeyGenerator] = None,
        auto_pump: bool = True,
        expected_measurement: Optional[bytes] = None,
        response_timeout_s: Optional[float] = None,
        obs: Optional[ObsContext] = None,
        trace_ops: bool = True,
    ):
        self.response_timeout_s = response_timeout_s
        self.obs = obs if obs is not None else server.obs
        self._trace_ops = trace_ops
        self.client_id = client_id if client_id is not None else next(_client_ids)
        self.keygen = keygen if keygen is not None else KeyGenerator()
        self.provider = CryptoProvider(self.keygen)
        self._pump: Optional[Callable[[], int]] = (
            server.process_pending if auto_pump else None
        )
        self._server = server

        # 1. Remote attestation establishes trust and the session key (§3.6).
        measurement = (
            expected_measurement
            if expected_measurement is not None
            else server.enclave.measurement
        )
        self.session = attest_and_establish_session(
            server.enclave, measurement, self.client_id, self.keygen
        )

        # 2. RDMA bootstrap: register local regions, connect QPs, learn the
        #    server's buffer window (rkey + layout).
        fabric = server.fabric
        self._host = f"client-{self.client_id}"
        self.pd = fabric.add_host(self._host)
        self._qp, server_qp = fabric.create_qp_pair(self._host, server.HOST_NAME)

        # Reply ring and credit word live in *client* memory; the server
        # writes both with one-sided WRITEs.
        # Layout depends on server config; fetch via admission below.
        self._reply_region = None
        self._credit_region = self.pd.register(
            8, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )

        # Pre-register reply region using the server's ring geometry.
        layout_probe = server.config
        reply_bytes = layout_probe.ring_slots * layout_probe.ring_slot_size
        self._reply_region = self.pd.register(
            reply_bytes, AccessFlags.REMOTE_WRITE | AccessFlags.LOCAL_WRITE
        )

        request_rkey, layout = server.add_client(
            self.client_id,
            self.session.key,
            server_qp,
            reply_rkey=self._reply_region.rkey,
            credit_rkey=self._credit_region.rkey,
        )
        self._layout = layout
        self._request_rkey = request_rkey
        self._producer = RingProducer(layout, write_remote=self._write_request)
        self._reply_consumer = RingConsumer(layout, self._reply_region)
        self._oid = 0
        self.fabric = fabric

        #: Client-side operation counters.
        self.operations = 0
        self.integrity_failures = 0

    @property
    def server(self) -> PrecursorServer:
        """The server this client is attached to (router introspection)."""
        return self._server

    # -- transport ------------------------------------------------------------

    def _write_request(self, offset: int, data: bytes) -> None:
        self.fabric.post_send(
            self._qp,
            WorkRequest(
                wr_id=self._oid,
                opcode=RdmaOpcode.RDMA_WRITE,
                data=data,
                remote_rkey=self._request_rkey,
                remote_offset=offset,
                signaled=False,
                inline=len(data) <= self._qp.max_inline,
            ),
        )

    def _refresh_credits(self) -> None:
        (consumed,) = struct.unpack(">Q", self._credit_region.read_local(0, 8))
        # The credit word lives in client memory the *server* writes -- but
        # any holder of the rkey could forge it.  Sanitize before applying:
        # never above what we actually produced, never regressing.  A
        # forged credit can then at worst delay us, not make us overwrite
        # unprocessed slots.
        consumed = min(consumed, self._producer._sequence)
        if consumed > self._producer._consumed:
            self._producer.credit_update(consumed)

    def _submit(self, request: Request) -> None:
        frame = request.encode()
        self._refresh_credits()
        try:
            self._producer.produce(frame)
        except CapacityError:
            # Ring full: let the server drain, pick up fresh credits, retry.
            if self._pump is not None:
                self._pump()
            elif self.response_timeout_s:
                deadline = time.monotonic() + self.response_timeout_s
                self._refresh_credits()
                while (
                    self._producer.free_slots <= 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(5e-6)
                    self._refresh_credits()
            self._refresh_credits()
            self._producer.produce(frame)

    def drain_replies(self) -> int:
        """Discard every queued reply frame; returns the number dropped.

        Error-path resync for batched callers (e.g. the shard router):
        when a pipelined batch aborts mid-window, replies for the already
        submitted remainder are still in flight, and the next operation
        would otherwise read one of them and fail the oid match.
        """
        if self._pump is not None:
            self._pump()
        dropped = 0
        while True:
            frame = self._reply_consumer.poll_one()
            if frame is None:
                break
            dropped += 1
        return dropped

    def _await_response(self) -> Response:
        if self._pump is not None:
            self._pump()
        frame = self._reply_consumer.poll_one()
        if frame is None and self._pump is None and self.response_timeout_s:
            # Threaded-server mode: a trusted thread elsewhere fills the
            # reply ring; spin until it does (or the deadline passes).
            deadline = time.monotonic() + self.response_timeout_s
            while frame is None and time.monotonic() < deadline:
                time.sleep(5e-6)
                frame = self._reply_consumer.poll_one()
        if frame is None:
            raise PrecursorError(
                "no response available; pump the server (process_pending) "
                "when auto_pump is disabled"
            )
        return Response.decode(frame)

    def _open_response(
        self, response: Response, expected_oid: Optional[int] = None
    ) -> ResponseControl:
        aad = b"resp" + struct.pack(">I", self.client_id)
        try:
            blob = self.provider.transport_open(
                self.session.key, response.sealed_control, aad=aad
            )
        except AuthenticationError:
            raise
        control = ResponseControl.decode(blob)
        if expected_oid is None:
            expected_oid = self._oid
        if control.oid != expected_oid:
            raise ProtocolError(
                f"response oid {control.oid} does not match request "
                f"{expected_oid}"
            )
        if control.status is Status.REPLAY:
            raise ReplayError(f"server rejected oid {self._oid} as a replay")
        return control

    def _next_control(
        self, opcode: OpCode, key: bytes, k_operation: Optional[bytes] = None
    ) -> ControlData:
        self._oid += 1
        return ControlData(
            opcode=opcode, oid=self._oid, key=key, k_operation=k_operation
        )

    def _seal_control(self, control: ControlData) -> Request:
        aad = struct.pack(">I", self.client_id)
        sealed = self.provider.transport_seal(
            self.session, control.encode(), aad=aad
        )
        return Request(
            client_id=self.client_id,
            sealed_control=sealed,
            reply_credit=self._reply_consumer.consumed,
        )

    # -- tracing ---------------------------------------------------------------

    def _start_trace(self, op: str) -> Optional[Trace]:
        """Begin an end-to-end span trace for one operation.

        Returns None when tracing is disabled or a trace is already active
        (batched operations interleave submissions and replies, so only
        single-key operations are traced per-op).
        """
        if not self._trace_ops:
            return None
        tracer = self.obs.tracer
        if tracer.current is not None:
            return None
        return tracer.start(op, client_id=self.client_id)

    # -- key-value API --------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key`` (Algorithm 1).

        Generates a fresh one-time key, encrypts and MACs the value
        client-side, and ships ciphertext+MAC as the untrusted payload next
        to the sealed control data.
        """
        self._check_key(key)
        trace = self._start_trace("put")
        try:
            with self.obs.tracer.stage("client.encrypt_payload"):
                k_operation = self.keygen.operation_key()
                payload = self.provider.payload_encrypt(k_operation, value)
            with self.obs.tracer.stage("client.seal_request"):
                control = self._next_control(OpCode.PUT, key, k_operation)
                request = self._seal_control(control)
                request = Request(
                    client_id=request.client_id,
                    sealed_control=request.sealed_control,
                    payload=payload,
                    reply_credit=request.reply_credit,
                )
            with self.obs.tracer.stage("client.rdma_write"):
                self._submit(request)
            self.operations += 1
            response = self._await_response()
            with self.obs.tracer.stage("client.open_response"):
                control_resp = self._open_response(response)
            if control_resp.status is not Status.OK:
                raise PrecursorError(f"put failed: {control_resp.status.name}")
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()

    def get(self, key: bytes) -> bytes:
        """Fetch and verify the value stored under ``key``.

        The payload arrives as raw ciphertext from untrusted memory; the
        one-time key arrives inside the sealed control data.  The client
        recomputes the MAC and decrypts -- any tampering with the server's
        untrusted memory raises :class:`IntegrityError` here.
        """
        self._check_key(key)
        trace = self._start_trace("get")
        try:
            with self.obs.tracer.stage("client.seal_request"):
                control = self._next_control(OpCode.GET, key)
                request = self._seal_control(control)
            with self.obs.tracer.stage("client.rdma_write"):
                self._submit(request)
            self.operations += 1
            response = self._await_response()
            with self.obs.tracer.stage("client.open_response"):
                control_resp = self._open_response(response)
            if control_resp.status is Status.NOT_FOUND:
                raise KeyNotFoundError(key)
            if control_resp.status is not Status.OK:
                raise PrecursorError(f"get failed: {control_resp.status.name}")
            if response.payload is None or control_resp.k_operation is None:
                raise ProtocolError(
                    "GET response missing payload or key material"
                )
            payload = response.payload
            if control_resp.mac is not None:
                # Strict-integrity mode (§3.9): the MAC bound inside the
                # sealed channel overrides whatever sits in untrusted memory.
                payload = EncryptedPayload(
                    ciphertext=payload.ciphertext, mac=control_resp.mac
                )
            try:
                with self.obs.tracer.stage("client.verify_decrypt"):
                    value = self.provider.payload_decrypt(
                        control_resp.k_operation, payload
                    )
            except IntegrityError:
                self.integrity_failures += 1
                raise
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()
        return value

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent."""
        self._check_key(key)
        trace = self._start_trace("delete")
        try:
            with self.obs.tracer.stage("client.seal_request"):
                control = self._next_control(OpCode.DELETE, key)
                request = self._seal_control(control)
            with self.obs.tracer.stage("client.rdma_write"):
                self._submit(request)
            self.operations += 1
            response = self._await_response()
            with self.obs.tracer.stage("client.open_response"):
                control_resp = self._open_response(response)
            if control_resp.status is Status.NOT_FOUND:
                raise KeyNotFoundError(key)
            if control_resp.status is not Status.OK:
                raise PrecursorError(
                    f"delete failed: {control_resp.status.name}"
                )
        except BaseException:
            if trace is not None:
                trace.abort()
            raise
        if trace is not None:
            trace.finish()

    # -- batched operations ----------------------------------------------------

    def _batch_window(self) -> int:
        """Outstanding requests per pipelined batch.

        Bounded to half the ring depth so neither the request ring nor the
        reply ring (both ``slot_count`` deep) can overflow while replies
        are still unconsumed.
        """
        return max(1, self._layout.slot_count // 2)

    def put_many(self, items) -> int:
        """Pipeline several puts: submit a window of frames, then collect.

        Amortises server pumping and exploits the ring's depth (with
        selective signaling, batches are how one-sided designs reach their
        throughput).  Returns the number of stored items; raises on the
        first failed reply.
        """
        items = list(items)
        window = self._batch_window()
        stored = 0
        for start in range(0, len(items), window):
            pending = []
            for key, value in items[start : start + window]:
                self._check_key(key)
                k_operation = self.keygen.operation_key()
                payload = self.provider.payload_encrypt(k_operation, value)
                control = self._next_control(OpCode.PUT, key, k_operation)
                request = self._seal_control(control)
                request = Request(
                    client_id=request.client_id,
                    sealed_control=request.sealed_control,
                    payload=payload,
                    reply_credit=request.reply_credit,
                )
                self._submit(request)
                pending.append(control.oid)
            self.operations += len(pending)
            for oid in pending:
                control_resp = self._open_response(self._await_response(), oid)
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"batched put failed at oid {oid}: "
                        f"{control_resp.status.name}"
                    )
                stored += 1
        return stored

    def get_many(self, keys) -> list:
        """Pipeline several gets; returns values aligned with ``keys``.

        Raises :class:`KeyNotFoundError` on the first missing key and
        :class:`IntegrityError` if any fetched payload fails verification.
        """
        keys = list(keys)
        window = self._batch_window()
        values = []
        for start in range(0, len(keys), window):
            pending = []
            for key in keys[start : start + window]:
                self._check_key(key)
                control = self._next_control(OpCode.GET, key)
                self._submit(self._seal_control(control))
                pending.append((control.oid, key))
            self.operations += len(pending)
            for oid, key in pending:
                response = self._await_response()
                control_resp = self._open_response(response, oid)
                if control_resp.status is Status.NOT_FOUND:
                    raise KeyNotFoundError(key)
                if control_resp.status is not Status.OK:
                    raise PrecursorError(
                        f"batched get failed: {control_resp.status.name}"
                    )
                if response.payload is None or control_resp.k_operation is None:
                    raise ProtocolError(
                        "GET response missing payload or key material"
                    )
                payload = response.payload
                if control_resp.mac is not None:
                    payload = EncryptedPayload(
                        ciphertext=payload.ciphertext, mac=control_resp.mac
                    )
                values.append(
                    self.provider.payload_decrypt(
                        control_resp.k_operation, payload
                    )
                )
        return values

    @staticmethod
    def _check_key(key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise ProtocolError("keys must be non-empty bytes")
