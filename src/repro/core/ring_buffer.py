"""Per-client circular request/reply buffers over registered memory.

Paper §3.5: "The core design choice is to use a separate ring buffer for
incoming and outgoing requests per client. Inside the TEE, a worker thread
updates these buffers."  Clients RDMA-WRITE frames into slots; the consumer
polls for ready slots without any notification; flow-control credits flow
back with the server's periodic one-sided writes (§3.8), so a client can
always "compute the available space in its pre-allocated buffer" (§3.7).

Slot layout::

    u32 length | u32 sequence | frame bytes ...

A slot is ready when its stored sequence equals the consumer's expected
sequence for that slot; sequence numbers increase monotonically across ring
wraps, so stale slot contents are never mistaken for fresh requests and the
consumer never needs to zero memory.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CapacityError, ConfigurationError
from repro.rdma.memory import MemoryRegion

__all__ = ["RingLayout", "RingProducer", "RingConsumer"]

_HEADER = struct.Struct(">II")


class RingLayout:
    """Geometry shared by the producer and consumer of one ring."""

    def __init__(self, slot_count: int, slot_size: int):
        if slot_count < 1:
            raise ConfigurationError(f"slot_count must be >= 1: {slot_count}")
        if slot_size <= _HEADER.size:
            raise ConfigurationError(
                f"slot_size must exceed the {_HEADER.size}-byte header"
            )
        self.slot_count = slot_count
        self.slot_size = slot_size

    @property
    def total_bytes(self) -> int:
        """Bytes of registered memory one ring occupies."""
        return self.slot_count * self.slot_size

    @property
    def max_frame(self) -> int:
        """Largest frame that fits one slot."""
        return self.slot_size - _HEADER.size

    def slot_offset(self, index: int) -> int:
        """Byte offset of slot ``index`` within the region."""
        return (index % self.slot_count) * self.slot_size


class RingProducer:
    """The writing side: a client for requests, the server for replies.

    ``write_remote(offset, data)`` abstracts the transport -- the Precursor
    client wires it to a one-sided RDMA WRITE into the server's region.
    Credits limit outstanding writes: the producer refuses to overwrite a
    slot the consumer has not freed (paper §3.5: clients must not overwrite
    data "unless it has already been processed by the server").
    """

    def __init__(
        self,
        layout: RingLayout,
        write_remote: Callable[[int, bytes], None],
        write_remote_many: Optional[
            Callable[[Sequence[Tuple[int, bytes]]], None]
        ] = None,
    ):
        self.layout = layout
        self._write_remote = write_remote
        self._write_remote_many = write_remote_many
        self._sequence = 0
        self._consumed = 0  # consumer's progress, updated via credits

    @property
    def outstanding(self) -> int:
        """Frames written but not yet acknowledged as consumed."""
        return self._sequence - self._consumed

    @property
    def free_slots(self) -> int:
        """Slots the producer may still write without overrunning."""
        return self.layout.slot_count - self.outstanding

    def produce(self, frame: bytes) -> int:
        """Write one frame into the next slot; returns its sequence number.

        Raises :class:`CapacityError` when no credit is available -- the
        caller must pump the consumer (or wait for a credit update).
        """
        if len(frame) > self.layout.max_frame:
            raise CapacityError(
                f"frame of {len(frame)} B exceeds slot payload "
                f"{self.layout.max_frame} B"
            )
        if self.free_slots <= 0:
            raise CapacityError("ring full: no consumer credit")
        self._sequence += 1
        seq = self._sequence
        offset = self.layout.slot_offset(seq - 1)
        self._write_remote(offset, _HEADER.pack(len(frame), seq) + frame)
        return seq

    def produce_many(self, frames: Iterable[bytes]) -> List[int]:
        """Write several frames with one coalesced transport operation.

        The batched reply path of the server: slot *contents* are exactly
        what ``len(frames)`` individual :meth:`produce` calls would have
        written (same slots, same headers, same sequence numbers), but
        the bytes travel as a single gather write when the transport
        supports it (``write_remote_many``).  Credits are checked for the
        whole batch up front, so the write is all-or-nothing from the
        producer's point of view: :class:`CapacityError` is raised
        *before* any slot is written or any sequence number consumed,
        which lets a caller that wants serial-style partial delivery
        (the server's batched reply phase does) fall back to per-frame
        :meth:`produce` and fail on the same frame the serial path
        would.

        A batch of zero or one frames falls back to :meth:`produce`, so
        the wire behaviour -- including any fault-injection judgement
        sequence -- is indistinguishable from the serial path.
        """
        staged = list(frames)
        if len(staged) <= 1:
            return [self.produce(frame) for frame in staged]
        for frame in staged:
            if len(frame) > self.layout.max_frame:
                raise CapacityError(
                    f"frame of {len(frame)} B exceeds slot payload "
                    f"{self.layout.max_frame} B"
                )
        if self.free_slots < len(staged):
            raise CapacityError(
                f"ring cannot take {len(staged)} frames: only "
                f"{self.free_slots} credits free"
            )
        seqs: List[int] = []
        writes: List[Tuple[int, bytes]] = []
        for frame in staged:
            self._sequence += 1
            seq = self._sequence
            seqs.append(seq)
            writes.append(
                (
                    self.layout.slot_offset(seq - 1),
                    _HEADER.pack(len(frame), seq) + frame,
                )
            )
        if self._write_remote_many is not None:
            self._write_remote_many(writes)
        else:
            for offset, payload in writes:
                self._write_remote(offset, payload)
        return seqs

    def credit_update(self, consumed: int) -> None:
        """Apply a credit write from the consumer (monotonic)."""
        if consumed < self._consumed or consumed > self._sequence:
            raise ConfigurationError(
                f"bad credit {consumed} (consumed={self._consumed}, "
                f"produced={self._sequence})"
            )
        self._consumed = consumed


class RingConsumer:
    """The polling side: a trusted server thread for requests, the client
    for replies.

    ``poll()`` scans from the read cursor and returns every ready frame,
    in order.  ``credits_due()`` reports progress for the periodic
    one-sided credit write back to the producer.
    """

    def __init__(self, layout: RingLayout, region: MemoryRegion):
        if region.length < layout.total_bytes:
            raise ConfigurationError(
                f"region of {region.length} B cannot hold ring of "
                f"{layout.total_bytes} B"
            )
        self.layout = layout
        self._region = region
        self._next_seq = 1
        self._reported = 0
        self.polls = 0
        self.frames_consumed = 0

    def poll_one(self) -> Optional[bytes]:
        """Return the next ready frame, or None."""
        self.polls += 1
        layout = self.layout
        offset = layout.slot_offset(self._next_seq - 1)
        header = self._region.read_local(offset, _HEADER.size)
        length, seq = _HEADER.unpack(header)
        if seq != self._next_seq:
            return None
        if length > layout.max_frame:
            # Garbage from a rogue producer; skip the slot defensively.
            self._next_seq += 1
            return None
        frame = self._region.read_local(offset + _HEADER.size, length)
        self._next_seq += 1
        self.frames_consumed += 1
        return frame

    def poll(self, limit: int = 64) -> List[bytes]:
        """Drain up to ``limit`` ready frames."""
        frames = []
        while len(frames) < limit:
            frame = self.poll_one()
            if frame is None:
                break
            frames.append(frame)
        return frames

    def pending(self, limit: Optional[int] = None) -> int:
        """Count ready-but-unconsumed frames without consuming them.

        The telemetry pipeline's queue-depth probe: scans headers from
        the read cursor forward, stopping at the first slot that is not
        ready (or looks like garbage), leaving the cursor untouched.

        ``limit=None`` (the default) scans the whole ring.  The scan is
        always capped at ``slot_count``: a ring can never hold more
        ready frames than it has slots, and scanning further would wrap
        back onto slots already counted.  (An earlier version silently
        capped at 64 regardless of geometry, so partially-drained rings
        larger than 64 slots under-reported their queue depth.)

        A garbage slot (rogue length field) stops the scan: the frames
        behind it are invisible to telemetry until the consumer's next
        poll skips the slot and re-exposes them.  That is deliberately
        conservative -- depth never counts frames the consumer might not
        actually reach on its next drain.
        """
        layout = self.layout
        if limit is None or limit > layout.slot_count:
            limit = layout.slot_count
        count = 0
        seq = self._next_seq
        while count < limit:
            offset = layout.slot_offset(seq - 1)
            header = self._region.read_local(offset, _HEADER.size)
            length, stored = _HEADER.unpack(header)
            if stored != seq or length > layout.max_frame:
                break
            count += 1
            seq += 1
        return count

    @property
    def consumed(self) -> int:
        """Total frames consumed (the credit value to advertise)."""
        return self._next_seq - 1

    def credits_due(self) -> Optional[int]:
        """Credit value to push to the producer, or None if unchanged."""
        if self.consumed == self._reported:
            return None
        self._reported = self.consumed
        return self.consumed
