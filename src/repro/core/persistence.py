"""Persistent checkpoints of a Precursor server, rollback-protected.

Paper §2.1: "When the data is persistently saved to the disk, SGX provides
trusted time and monotonic counters to detect state rollback attacks and
forking.  In this regard, previous works propose different prevention
techniques, which can be integrated into our design."

This module is that integration.  A checkpoint serialises the server's
state -- the enclave metadata (keys, one-time keys, per-client oids) and
the untrusted payload blobs -- seals the *trusted* part to the enclave's
identity (:mod:`repro.sgx.sealing`), and binds the whole snapshot to a
monotonic counter (:class:`~repro.sgx.counters.RollbackGuard`).  Restoring
verifies identity, integrity and freshness before any byte is trusted:

- a snapshot from a different enclave fails unsealing;
- a modified snapshot fails its seal or digest;
- an *old* snapshot (the rollback/forking attack) fails the counter check.

Payload blobs need no extra protection: they are client-encrypted and
client-verified, exactly as in live operation -- persistence preserves the
split-trust design.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.server import PrecursorServer, _Entry
from repro.errors import IntegrityError, PrecursorError
from repro.sgx.counters import MonotonicCounterService, RollbackGuard, SealedCheckpoint
from repro.sgx.sealing import seal_data, unseal_data

__all__ = ["ServerCheckpoint", "CheckpointManager"]

_MAGIC = b"PRCK"


@dataclass(frozen=True)
class ServerCheckpoint:
    """Everything persisted for one checkpoint."""

    sealed_trusted_state: bytes  # enclave-sealed metadata
    untrusted_payloads: bytes  # client-encrypted blobs, stored as-is
    rollback: SealedCheckpoint  # counter binding over both parts


def _encode_trusted_state(server: PrecursorServer) -> bytes:
    """Serialise the enclave-resident metadata (inside the enclave)."""
    entries: List[bytes] = []
    table = server._table
    items = list(table.items()) if table is not None else []
    for key, entry in items:
        if entry.inline_payload is not None:
            raise PrecursorError(
                "checkpointing inline-small-values stores is not supported"
            )
        mac = entry.mac or b""
        entries.append(
            struct.pack(
                ">H32sIIIIB",
                len(key),
                entry.k_operation,
                entry.ptr.arena,
                entry.ptr.offset,
                entry.ptr.length,
                entry.client_id,
                len(mac),
            )
            + key
            + mac
        )
    oids = [
        struct.pack(">IQ", client_id, server._replay.expected_oid(client_id))
        for client_id in sorted(server._replay._expected)
    ]
    return (
        _MAGIC
        + struct.pack(">II", len(entries), len(oids))
        + b"".join(entries)
        + b"".join(oids)
    )


def _decode_trusted_state(blob: bytes) -> Tuple[List[Tuple[bytes, _Entry]], Dict[int, int]]:
    if blob[:4] != _MAGIC:
        raise IntegrityError("trusted-state blob has a bad magic")
    entry_count, oid_count = struct.unpack(">II", blob[4:12])
    cursor = 12
    entries: List[Tuple[bytes, _Entry]] = []
    header = struct.Struct(">H32sIIIIB")
    from repro.core.payload_store import PayloadPointer

    for _ in range(entry_count):
        key_len, k_op, arena, offset, length, client_id, mac_len = (
            header.unpack(blob[cursor : cursor + header.size])
        )
        cursor += header.size
        key = blob[cursor : cursor + key_len]
        cursor += key_len
        mac = blob[cursor : cursor + mac_len] if mac_len else None
        cursor += mac_len
        entries.append(
            (
                key,
                _Entry(
                    k_operation=k_op,
                    ptr=PayloadPointer(arena=arena, offset=offset, length=length),
                    client_id=client_id,
                    mac=mac,
                ),
            )
        )
    oids: Dict[int, int] = {}
    for _ in range(oid_count):
        client_id, oid = struct.unpack(">IQ", blob[cursor : cursor + 12])
        cursor += 12
        oids[client_id] = oid
    return entries, oids


def _encode_payload_arenas(server: PrecursorServer) -> bytes:
    store = server.payload_store
    parts = [struct.pack(">IQ", store.arena_count, store.arena_size)]
    for arena, bump in zip(store._arenas, store._bump):
        parts.append(struct.pack(">Q", bump))
        parts.append(bytes(arena[:bump]))
    return b"".join(parts)


def _restore_payload_arenas(server: PrecursorServer, blob: bytes) -> None:
    store = server.payload_store
    arena_count, arena_size = struct.unpack(">IQ", blob[:12])
    if arena_size != store.arena_size:
        raise IntegrityError("arena size mismatch in snapshot")
    cursor = 12
    store._arenas = []
    store._bump = []
    for _ in range(arena_count):
        (bump,) = struct.unpack(">Q", blob[cursor : cursor + 8])
        cursor += 8
        arena = bytearray(arena_size)
        arena[:bump] = blob[cursor : cursor + bump]
        cursor += bump
        store._arenas.append(arena)
        store._bump.append(bump)


class CheckpointManager:
    """Creates and restores rollback-protected server checkpoints.

    These are *operator snapshots* and enclave-crash restore points on
    a surviving host's disk -- never a stand-in for replication: a
    machine loss (``shard_death``) keeps only what the shard's replica
    group shipped to backups (docs/REPLICATION.md).
    """

    def __init__(
        self,
        counters: MonotonicCounterService = None,
        counter_name: str = "precursor-state",
    ):
        self.counters = counters if counters is not None else MonotonicCounterService()
        self.counter_name = counter_name
        self._guards: Dict[bytes, RollbackGuard] = {}

    def _guard_for(self, server: PrecursorServer) -> RollbackGuard:
        measurement = server.enclave.measurement
        guard = self._guards.get(measurement)
        if guard is None:
            from repro.sgx.sealing import SealingKey

            guard = RollbackGuard(
                self.counters,
                sealing_key=SealingKey(server.enclave).key,
                counter_name=self.counter_name,
            )
            self._guards[measurement] = guard
        return guard

    def checkpoint(self, server: PrecursorServer) -> ServerCheckpoint:
        """Snapshot ``server``: seal trusted state, bind to the counter."""
        guard = self._guard_for(server)
        trusted = _encode_trusted_state(server)
        payloads = _encode_payload_arenas(server)
        counter_value = self.counters.read(self.counter_name) + 1
        sealed = seal_data(
            server.enclave, trusted, iv_counter=counter_value, aad=b"precursor-ckpt"
        )
        rollback = guard.checkpoint(sealed + payloads)
        return ServerCheckpoint(
            sealed_trusted_state=sealed,
            untrusted_payloads=payloads,
            rollback=rollback,
        )

    def restore(self, server: PrecursorServer, checkpoint: ServerCheckpoint) -> int:
        """Rebuild ``server`` state from ``checkpoint``; returns key count.

        Verifies freshness (rollback counter), seal (enclave identity) and
        integrity before mutating anything.  The target server must be
        freshly started (no keys).
        """
        if server.key_count != 0:
            raise PrecursorError("restore target must be empty")
        guard = self._guard_for(server)
        blob = checkpoint.sealed_trusted_state + checkpoint.untrusted_payloads
        guard.verify_restore(checkpoint.rollback, blob)
        trusted = unseal_data(
            server.enclave, checkpoint.sealed_trusted_state, aad=b"precursor-ckpt"
        )
        entries, oids = _decode_trusted_state(trusted)
        _restore_payload_arenas(server, checkpoint.untrusted_payloads)
        table = server._ensure_table()
        live = 0
        for key, entry in entries:
            table.put(key, entry)
            live += entry.ptr.length
            server._charge_table_growth()
        server.payload_store.live_bytes = live
        server.payload_store.dead_bytes = 0
        for client_id, oid in oids.items():
            # Re-admitted clients resume their replay counters.
            server._replay._expected[client_id] = oid
        return len(entries)
