"""Precursor wire protocol: request/response framing and control data.

The defining idea of Precursor (paper §3.3, Figure 2) is that every request
splits into two segments:

- **control data** -- operation code, key item, one-time key ``K_operation``
  and the replay counter ``oid`` -- sealed with AES-GCM under the session
  key; only this segment ever enters the enclave;
- **payload data** -- the value encrypted client-side under ``K_operation``
  plus a CMAC over the ciphertext -- which stays in untrusted memory
  end-to-end.

On the wire a request additionally carries an ``opcode`` byte, a
``start_sign`` and an ``end_sign`` operand to detect the start and end of a
request in the ring-buffer slot (paper §4).  The opcode inside the sealed
control data is authoritative; the outer byte only routes the frame.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.provider import EncryptedPayload, SealedMessage
from repro.errors import ProtocolError

def _checked_unpack(fmt, data):
    """struct.unpack that reports truncation as a protocol violation.

    Malformed frames from rogue clients must surface as ProtocolError (the
    polling loop's drop-and-count path), never as a struct.error that
    would crash a trusted thread.
    """
    try:
        return struct.unpack(fmt, data)
    except struct.error as exc:
        raise ProtocolError(f"truncated field: {exc}") from exc


__all__ = [
    "OpCode",
    "Status",
    "ControlData",
    "ResponseControl",
    "Request",
    "Response",
    "START_SIGN",
    "END_SIGN",
    "CONTROL_DATA_SIZE",
]

#: Frame delimiters (paper §4: "a start_sign and an end_sign operand").
START_SIGN = 0xA5
END_SIGN = 0x5A

_MAC_SIZE = 16
_KOP_SIZE = 32


class OpCode(enum.IntEnum):
    """Key-value operations."""

    PUT = 1
    GET = 2
    DELETE = 3


class Status(enum.IntEnum):
    """Server response status codes (travel inside sealed control data)."""

    OK = 0
    NOT_FOUND = 1
    REPLAY = 2
    ERROR = 3


@dataclass(frozen=True)
class ControlData:
    """Plaintext of the sealed request control segment (Algorithm 1, l.7).

    ``k_operation`` is present for PUT (the fresh one-time key) and absent
    for GET/DELETE.
    """

    opcode: OpCode
    oid: int
    key: bytes
    k_operation: Optional[bytes] = None

    def encode(self) -> bytes:
        """Serialise to the byte layout sealed under the session key."""
        if not self.key:
            raise ProtocolError("empty key")
        if len(self.key) > 0xFFFF:
            raise ProtocolError(f"key too long: {len(self.key)} bytes")
        has_kop = self.k_operation is not None
        if self.opcode is OpCode.PUT and not has_kop:
            raise ProtocolError("PUT control data requires K_operation")
        if has_kop and len(self.k_operation) != _KOP_SIZE:
            raise ProtocolError(
                f"K_operation must be {_KOP_SIZE} bytes, got {len(self.k_operation)}"
            )
        head = struct.pack(
            ">BQH", int(self.opcode), self.oid, len(self.key)
        )
        kop = self.k_operation if has_kop else b""
        return head + bytes([len(kop)]) + kop + self.key

    @classmethod
    def decode(cls, blob: bytes) -> "ControlData":
        """Parse the sealed-and-opened control segment."""
        if len(blob) < 12:
            raise ProtocolError("control data truncated")
        opcode_raw, oid, key_len = _checked_unpack(">BQH", blob[:11])
        try:
            opcode = OpCode(opcode_raw)
        except ValueError as exc:
            raise ProtocolError(f"unknown opcode {opcode_raw}") from exc
        kop_len = blob[11]
        cursor = 12
        k_operation = None
        if kop_len:
            if kop_len != _KOP_SIZE:
                raise ProtocolError(f"bad K_operation length {kop_len}")
            k_operation = blob[cursor : cursor + kop_len]
            cursor += kop_len
        key = blob[cursor : cursor + key_len]
        if len(key) != key_len or cursor + key_len != len(blob):
            raise ProtocolError("control data length mismatch")
        return cls(opcode=opcode, oid=oid, key=key, k_operation=k_operation)


#: Nominal size of the control segment for a PUT with a 16-byte key:
#: opcode+oid+lengths (12) + K_op (32) + key (16) -- the paper's ~56 B.
CONTROL_DATA_SIZE = 12 + _KOP_SIZE + 16


@dataclass(frozen=True)
class ResponseControl:
    """Plaintext of the sealed response control segment.

    A GET reply carries the one-time key so the client can verify and
    decrypt the untrusted payload; in strict-integrity mode (paper §3.9) it
    also carries the enclave-held MAC.
    """

    status: Status
    oid: int
    k_operation: Optional[bytes] = None
    mac: Optional[bytes] = None

    def encode(self) -> bytes:
        """Serialise to the sealed-response byte layout."""
        kop = self.k_operation or b""
        if kop and len(kop) != _KOP_SIZE:
            raise ProtocolError(f"bad K_operation length {len(kop)}")
        mac = self.mac or b""
        if mac and len(mac) != _MAC_SIZE:
            raise ProtocolError(f"bad MAC length {len(mac)}")
        return (
            struct.pack(">BQ", int(self.status), self.oid)
            + bytes([len(kop)])
            + kop
            + bytes([len(mac)])
            + mac
        )

    @classmethod
    def decode(cls, blob: bytes) -> "ResponseControl":
        if len(blob) < 10:
            raise ProtocolError("response control truncated")
        status_raw, oid = _checked_unpack(">BQ", blob[:9])
        try:
            status = Status(status_raw)
        except ValueError as exc:
            raise ProtocolError(f"unknown status {status_raw}") from exc
        cursor = 9
        kop_len = blob[cursor]
        cursor += 1
        k_operation = blob[cursor : cursor + kop_len] if kop_len else None
        cursor += kop_len
        if cursor >= len(blob):
            raise ProtocolError("response control truncated")
        mac_len = blob[cursor]
        cursor += 1
        mac = blob[cursor : cursor + mac_len] if mac_len else None
        cursor += mac_len
        if cursor != len(blob):
            raise ProtocolError("response control length mismatch")
        return cls(status=status, oid=oid, k_operation=k_operation, mac=mac)


@dataclass(frozen=True)
class Request:
    """A framed request as it sits in the server's ring buffer slot.

    ``reply_credit`` piggybacks the client's reply-ring consumption count so
    the server's reply producer regains slots without a dedicated message --
    flow-control state is not confidential, so it rides outside the sealed
    segment (cf. §3.8's periodic one-sided credit updates).
    """

    client_id: int
    sealed_control: SealedMessage
    payload: Optional[EncryptedPayload] = None
    reply_credit: int = 0

    def encode(self) -> bytes:
        """Frame: start | client | credit | sealed | payload? | end."""
        sealed_blob = self.sealed_control.iv + self.sealed_control.sealed
        parts = [
            struct.pack(
                ">BIIH",
                START_SIGN,
                self.client_id,
                self.reply_credit,
                len(sealed_blob),
            ),
            sealed_blob,
        ]
        if self.payload is not None:
            if len(self.payload.mac) != _MAC_SIZE:
                raise ProtocolError("payload MAC must be 16 bytes")
            parts.append(struct.pack(">I", len(self.payload.ciphertext)))
            parts.append(self.payload.ciphertext)
            parts.append(self.payload.mac)
        else:
            parts.append(struct.pack(">I", 0xFFFFFFFF))
        parts.append(bytes([END_SIGN]))
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "Request":
        if len(blob) < 12 or blob[0] != START_SIGN:
            raise ProtocolError("bad request frame: missing start_sign")
        if blob[-1] != END_SIGN:
            raise ProtocolError("bad request frame: missing end_sign")
        _, client_id, reply_credit, sealed_len = _checked_unpack(
            ">BIIH", blob[:11]
        )
        cursor = 11
        sealed_blob = blob[cursor : cursor + sealed_len]
        if len(sealed_blob) != sealed_len:
            raise ProtocolError("request frame truncated in control segment")
        if sealed_len < 12 + 16:
            # A sealed segment is at least an IV plus a GCM tag; anything
            # shorter cannot authenticate and must not reach the crypto.
            raise ProtocolError("sealed control segment impossibly short")
        cursor += sealed_len
        (payload_len,) = _checked_unpack(">I", blob[cursor : cursor + 4])
        cursor += 4
        payload = None
        if payload_len != 0xFFFFFFFF:
            ciphertext = blob[cursor : cursor + payload_len]
            cursor += payload_len
            mac = blob[cursor : cursor + _MAC_SIZE]
            cursor += _MAC_SIZE
            if len(ciphertext) != payload_len or len(mac) != _MAC_SIZE:
                raise ProtocolError("request frame truncated in payload")
            payload = EncryptedPayload(ciphertext=ciphertext, mac=mac)
        if cursor + 1 != len(blob):
            raise ProtocolError("request frame length mismatch")
        return cls(
            client_id=client_id,
            sealed_control=SealedMessage(
                iv=sealed_blob[:12], sealed=sealed_blob[12:]
            ),
            payload=payload,
            reply_credit=reply_credit,
        )

    def control_size(self) -> int:
        """Bytes of the control segment (what enters the enclave)."""
        return self.sealed_control.size()

    def payload_size(self) -> int:
        """Bytes of the payload segment (what stays untrusted)."""
        return self.payload.size() if self.payload else 0


@dataclass(frozen=True)
class Response:
    """A framed response written back into the client's reply buffer."""

    sealed_control: SealedMessage
    payload: Optional[EncryptedPayload] = None

    def encode(self) -> bytes:
        """Frame: start | sealed | payload? | end."""
        sealed_blob = self.sealed_control.iv + self.sealed_control.sealed
        parts = [
            struct.pack(">BH", START_SIGN, len(sealed_blob)),
            sealed_blob,
        ]
        if self.payload is not None:
            parts.append(struct.pack(">I", len(self.payload.ciphertext)))
            parts.append(self.payload.ciphertext)
            parts.append(self.payload.mac)
        else:
            parts.append(struct.pack(">I", 0xFFFFFFFF))
        parts.append(bytes([END_SIGN]))
        return b"".join(parts)

    @classmethod
    def decode(cls, blob: bytes) -> "Response":
        if len(blob) < 4 or blob[0] != START_SIGN:
            raise ProtocolError("bad response frame: missing start_sign")
        if blob[-1] != END_SIGN:
            raise ProtocolError("bad response frame: missing end_sign")
        _, sealed_len = _checked_unpack(">BH", blob[:3])
        cursor = 3
        sealed_blob = blob[cursor : cursor + sealed_len]
        if len(sealed_blob) != sealed_len or sealed_len < 12 + 16:
            raise ProtocolError("response sealed segment truncated or short")
        cursor += sealed_len
        (payload_len,) = _checked_unpack(">I", blob[cursor : cursor + 4])
        cursor += 4
        payload = None
        if payload_len != 0xFFFFFFFF:
            ciphertext = blob[cursor : cursor + payload_len]
            cursor += payload_len
            mac = blob[cursor : cursor + _MAC_SIZE]
            cursor += _MAC_SIZE
            if len(ciphertext) != payload_len or len(mac) != _MAC_SIZE:
                raise ProtocolError("response frame truncated in payload")
            payload = EncryptedPayload(ciphertext=ciphertext, mac=mac)
        if cursor + 1 != len(blob):
            raise ProtocolError("response frame length mismatch")
        return cls(
            sealed_control=SealedMessage(
                iv=sealed_blob[:12], sealed=sealed_blob[12:]
            ),
            payload=payload,
        )
