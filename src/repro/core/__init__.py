"""Precursor core: the paper's primary contribution.

- :class:`PrecursorServer` / :class:`PrecursorClient` -- the client-centric
  scheme: payload encrypted client-side under one-time keys, control data
  sealed to the enclave, payloads in untrusted memory, one-sided RDMA rings.
- :class:`PrecursorServerEncryption` / :class:`ServerEncryptionClient` --
  the conventional server-encryption variant used as the paper's second
  baseline (same transport, server-side payload cryptography).
- :func:`make_pair` -- one-call construction of a wired server+client pair
  for quickstarts and tests.
"""

from repro.core.client import PrecursorClient
from repro.core.payload_store import PayloadPointer, PayloadStore
from repro.core.protocol import (
    ControlData,
    OpCode,
    Request,
    Response,
    ResponseControl,
    Status,
)
from repro.core.replay import ReplayGuard
from repro.core.ring_buffer import RingConsumer, RingLayout, RingProducer
from repro.core.server import PrecursorServer, ServerConfig, ServerStats
from repro.core.server_encryption import (
    PrecursorServerEncryption,
    ServerEncryptionClient,
)
from repro.core.threading import ServerThreadPool

__all__ = [
    "PrecursorServer",
    "PrecursorClient",
    "PrecursorServerEncryption",
    "ServerEncryptionClient",
    "ServerConfig",
    "ServerStats",
    "OpCode",
    "Status",
    "ControlData",
    "ResponseControl",
    "Request",
    "Response",
    "RingLayout",
    "RingProducer",
    "RingConsumer",
    "PayloadStore",
    "PayloadPointer",
    "ReplayGuard",
    "ServerThreadPool",
    "make_pair",
]


def make_pair(
    config: ServerConfig = None,
    seed: int = None,
    server_encryption: bool = False,
):
    """Create a wired (server, client) pair on a fresh fabric.

    Parameters
    ----------
    config:
        Optional :class:`ServerConfig`.
    seed:
        Seed for deterministic key material (tests/experiments).
    server_encryption:
        Build the server-encryption variant instead of client-centric
        Precursor.

    Returns
    -------
    (server, client):
        The client is constructed with ``auto_pump=True`` so operations
        behave synchronously.
    """
    from repro.crypto.keys import KeyGenerator

    keygen = KeyGenerator(seed=seed) if seed is not None else None
    if server_encryption:
        server = PrecursorServerEncryption(config=config, keygen=keygen)
        client = ServerEncryptionClient(server, keygen=keygen)
    else:
        server = PrecursorServer(config=config, keygen=keygen)
        client = PrecursorClient(server, keygen=keygen)
    return server, client
