"""The untrusted payload store: a pre-allocated memory pool.

Precursor keeps every encrypted value outside the enclave.  To store one,
the trusted thread needs untrusted space -- but calling ``malloc`` would be
an ocall per request.  Instead the server "pre-allocates a memory pool and
issues an ocall only when needed, i.e., to add extra space and reduce
enclave transitions" (paper §3.8); the implementation uses "a single ocall
function (called periodically to limit frequent transitions) to enlarge the
pre-allocated untrusted list" (paper §4).

The pool is a list of fixed-size arenas (bytearrays) with bump allocation.
Updates allocate a fresh slot and mark the old one as garbage; a dead-bytes
counter tracks fragmentation.  Pointers are ``(arena, offset, length)``
triples -- the ``ptr`` the enclave's hash table stores next to
``K_operation``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import CapacityError, ConfigurationError

__all__ = ["PayloadPointer", "PayloadStore"]


@dataclass(frozen=True)
class PayloadPointer:
    """Location of one stored payload in untrusted memory."""

    arena: int
    offset: int
    length: int


class PayloadStore:
    """Arena-based pool for encrypted payloads in untrusted memory."""

    def __init__(
        self,
        arena_size: int = 4 * 1024 * 1024,
        initial_arenas: int = 1,
        grow_ocall: Optional[Callable[[int], None]] = None,
        max_arenas: Optional[int] = None,
    ):
        if arena_size < 64:
            raise ConfigurationError(f"arena_size too small: {arena_size}")
        if initial_arenas < 1:
            raise ConfigurationError("need at least one initial arena")
        self.arena_size = arena_size
        self._arenas: List[bytearray] = [
            bytearray(arena_size) for _ in range(initial_arenas)
        ]
        self._bump: List[int] = [0] * initial_arenas
        self._grow_ocall = grow_ocall
        self._max_arenas = max_arenas
        # Trusted threads allocate concurrently (paper §3.8); the pool is
        # the one piece of untrusted state they all write.
        self._lock = threading.Lock()
        #: Number of times the pool had to grow (== ocalls issued).
        self.grow_count = 0
        self.live_bytes = 0
        self.dead_bytes = 0

    # -- allocation -----------------------------------------------------------

    def store(self, data: bytes) -> PayloadPointer:
        """Copy ``data`` into the pool; returns its pointer.

        Grows the pool (one modelled ocall) when the current arenas are
        exhausted.  Raises :class:`CapacityError` if data exceeds an arena
        or the arena cap is hit.
        """
        length = len(data)
        if length > self.arena_size:
            raise CapacityError(
                f"payload of {length} B exceeds arena size {self.arena_size}"
            )
        with self._lock:
            arena_idx = self._find_space(length)
            if arena_idx is None:
                self._grow()
                arena_idx = len(self._arenas) - 1
            offset = self._bump[arena_idx]
            self._arenas[arena_idx][offset : offset + length] = data
            self._bump[arena_idx] = offset + length
            self.live_bytes += length
        return PayloadPointer(arena=arena_idx, offset=offset, length=length)

    def _find_space(self, length: int) -> Optional[int]:
        for idx in range(len(self._arenas) - 1, -1, -1):
            if self.arena_size - self._bump[idx] >= length:
                return idx
        return None

    def _grow(self) -> None:
        if (
            self._max_arenas is not None
            and len(self._arenas) >= self._max_arenas
        ):
            raise CapacityError(
                f"payload store at its cap of {self._max_arenas} arenas"
            )
        if self._grow_ocall is not None:
            # The single batched ocall of paper §4.
            self._grow_ocall(self.arena_size)
        self._arenas.append(bytearray(self.arena_size))
        self._bump.append(0)
        self.grow_count += 1

    # -- access ---------------------------------------------------------------

    def load(self, ptr: PayloadPointer) -> bytes:
        """Read the payload bytes at ``ptr`` (no integrity check -- the
        client verifies; this memory is untrusted by design)."""
        self._check_ptr(ptr)
        arena = self._arenas[ptr.arena]
        return bytes(arena[ptr.offset : ptr.offset + ptr.length])

    def release(self, ptr: PayloadPointer) -> None:
        """Mark a slot as garbage after an update or delete."""
        self._check_ptr(ptr)
        with self._lock:
            self.live_bytes -= ptr.length
            self.dead_bytes += ptr.length

    def corrupt(self, ptr: PayloadPointer, flip_at: int = 0) -> None:
        """Flip one payload byte -- an *attack helper* for tests and the
        security examples, exercising exactly what a rogue administrator
        with access to untrusted memory could do (threat model §2.3)."""
        self._check_ptr(ptr)
        if not 0 <= flip_at < ptr.length:
            raise ConfigurationError(f"flip offset {flip_at} out of range")
        self._arenas[ptr.arena][ptr.offset + flip_at] ^= 0xFF

    def _check_ptr(self, ptr: PayloadPointer) -> None:
        if not 0 <= ptr.arena < len(self._arenas):
            raise ConfigurationError(f"bad arena index {ptr.arena}")
        if ptr.offset < 0 or ptr.offset + ptr.length > self.arena_size:
            raise ConfigurationError(
                f"pointer [{ptr.offset}, {ptr.offset + ptr.length}) outside arena"
            )

    # -- introspection -----------------------------------------------------

    @property
    def arena_count(self) -> int:
        """Arenas currently allocated."""
        return len(self._arenas)

    @property
    def total_bytes(self) -> int:
        """Untrusted bytes reserved by the pool."""
        return self.arena_size * len(self._arenas)

    def utilization(self) -> float:
        """Live bytes over reserved bytes."""
        return self.live_bytes / self.total_bytes if self.total_bytes else 0.0
