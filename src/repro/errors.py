"""Exception hierarchy shared across the Precursor reproduction.

All library errors derive from :class:`PrecursorError` so callers can catch
one base class.  Security-relevant failures get their own subclasses because
callers are expected to treat them differently from plain lookup misses
(e.g. a failed MAC check on a ``get()`` means the untrusted store was
tampered with, not that the key is absent).
"""


class PrecursorError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(PrecursorError):
    """A component was constructed or wired with invalid parameters."""


class ProtocolError(PrecursorError):
    """A wire message violated the request/response framing rules."""


class AuthenticationError(PrecursorError):
    """Transport-level authenticated decryption failed.

    Raised when the AES-GCM tag over control data does not verify, i.e. the
    message was not produced by the holder of the session key.
    """


class IntegrityError(PrecursorError):
    """Payload integrity verification failed.

    Raised by the client when the MAC it recomputes over a fetched
    ciphertext does not match the MAC bound to the one-time key, i.e. the
    untrusted server memory was modified.
    """


class ReplayError(PrecursorError):
    """A request carried a stale or duplicated operation identifier."""


class KeyNotFoundError(PrecursorError, KeyError):
    """The requested key is not present in the store."""


class CapacityError(PrecursorError):
    """A bounded resource (ring buffer, memory pool, EPC) is exhausted."""


class AttestationError(PrecursorError):
    """Remote attestation of the server enclave failed."""


class OperationTimeoutError(PrecursorError):
    """An operation's reply did not arrive within its deadline.

    Raised by the client when the reply ring stays empty past the per-op
    timeout (or, in pumped mode, after the server was pumped and produced
    nothing).  A timeout is *retryable*: the request may have been lost
    before the server saw it, or its reply may have been lost afterwards --
    the retry path re-sends under the same ``oid`` so the server's replay
    filter deduplicates whichever case it was.
    """


class ShardUnavailableError(PrecursorError):
    """The target server/shard has crashed and cannot serve requests.

    Raised by any server entry point after :meth:`PrecursorServer.crash`.
    Routers treat it as a failover signal: mark the shard dead, refresh the
    ring epoch, and route around it.
    """


class StaleReadError(PrecursorError):
    """The store answered with authentic-but-outdated state for a key.

    Raised client-side when a read (or a NOT_FOUND answer) contradicts the
    client's own record of its last *acknowledged* write: the payload MAC
    of the returned value differs from the MAC of the acked write, a key
    with an acked value is suddenly absent, or a key the client deleted
    resurfaces.  Deliberately **not** an :class:`IntegrityError` -- the
    bytes verified fine, they are just from the past.  This is the
    client-centric detection path for a replica failover that lost the
    unreplicated tail of an ``async`` replication log.
    """

    def __init__(self, key: bytes, reason: str):
        self.key = key
        self.reason = reason
        super().__init__(f"stale read for {key!r}: {reason}")


class AccessError(PrecursorError):
    """An RDMA access violated memory-region permissions or bounds."""


class EnclaveError(PrecursorError):
    """An illegal crossing of the trusted/untrusted boundary was attempted."""


class SimulationError(PrecursorError):
    """The discrete-event simulator was driven into an invalid state."""


class ObservabilityError(PrecursorError):
    """The tracing/metrics subsystem was used incorrectly.

    Raised on span-protocol violations (closing stages out of order,
    finishing a trace with open stages) and invalid metric definitions
    (type conflicts, negative counter increments, bad histogram bounds).
    """
