"""Setuptools shim enabling offline editable installs (no wheel package)."""
from setuptools import setup

setup()
